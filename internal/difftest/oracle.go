package difftest

import (
	"errors"
	"fmt"
	"math"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/faultinject"
	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/isa"
	"fpint/internal/lang"
	"fpint/internal/opt"
	"fpint/internal/sim"
	"fpint/internal/trap"
	"fpint/internal/uarch"
)

// ErrFrontend wraps parse/check/lower/verify failures: the program never
// reached an execution engine, so there is nothing to cross-check. For
// generator-produced programs the sweep still counts this as a failure
// (the generator promises well-typed output), but the reducer must keep
// the two failure classes apart.
var ErrFrontend = errors.New("difftest: frontend rejected program")

// ErrSkip marks a program the oracle cannot judge: the reference
// interpreter exhausted its step budget, so no ground truth exists.
var ErrSkip = errors.New("difftest: reference run exceeded step budget")

// Mismatch is an oracle failure: two engines disagreed, or a metamorphic
// invariant broke.
type Mismatch struct {
	Stage  string // "compile", "trap", "output", "partition", "audit", "timing", "profit", "fault", "fast"
	Scheme string // scheme case name ("" for cross-scheme checks)
	Config string // uarch config name ("" outside the timing model)
	Detail string
}

// Error implements error.
func (m *Mismatch) Error() string {
	s := "difftest mismatch [" + m.Stage
	if m.Scheme != "" {
		s += " " + m.Scheme
	}
	if m.Config != "" {
		s += " " + m.Config
	}
	return s + "]: " + m.Detail
}

// Options configures the oracle.
type Options struct {
	// Cost overrides the §6.1 cost-model constants (zero → paper defaults).
	Cost core.CostParams
	// Timing additionally drives the cycle-level model on 4-way and 8-way
	// configurations for the basic/advanced/balanced schemes and checks
	// the stall-accounting invariants.
	Timing bool
	// Interproc adds the advanced+InterprocFPArgs scheme case.
	Interproc bool
	// Optimal adds the exact-oracle scheme case: the branch-and-bound
	// partition must be bit-exact with the reference interpreter, pass the
	// static verifier, and its accepted profit must dominate the advanced
	// scheme's (optimal ≥ advanced ≥ basic).
	Optimal bool
	// Analysis adds the basic+analysis and advanced+analysis scheme cases:
	// partitioning sharpened by the alias/value-range address oracle. The
	// runs must still match the reference interpreter exactly (unpinning an
	// address is only legal when it cannot change what the access touches),
	// and the advanced+analysis profit must dominate basic+analysis.
	Analysis bool
	// CheckProfit enforces the cross-scheme cost-model dominance check:
	// per function, the advanced scheme's accepted audit profit must be at
	// least the basic scheme's.
	CheckProfit bool
	// StepLimit bounds the reference interpreter (IR steps); the
	// functional simulator gets 8× (machine code expands IR ops). Zero
	// means the 2M default.
	StepLimit int64
	// MaxFPaFraction is the balanced scheme's cap (zero → 0.3).
	MaxFPaFraction float64
	// PartitionHook is forwarded to codegen for fault injection.
	PartitionHook func(fn string, part *core.Partition)
	// Faults, when non-nil, additionally runs each timed scheme case under
	// seeded transient-fault injection and asserts that every detected-and-
	// recovered run still produces architecturally correct output with a
	// closed stall ledger and cycle profile. Requires Timing.
	Faults *faultinject.Config
	// FastTiming additionally runs each timed scheme case through the
	// sampled-timing fast mode (uarch.RunSampled with default sampling) on
	// both configurations and asserts fast-mode fidelity: functional output
	// bit-identical to the reference, exact instruction counts, and a
	// closed extrapolated stall ledger. Requires Timing.
	FastTiming bool
	// FastHook, when non-nil, is called with each fast-mode functional
	// result before the oracle compares it — the fast-mode analogue of
	// PartitionHook, used to plant a known divergence and demonstrate
	// end-to-end that the oracle catches fast-mode bugs.
	FastHook func(cfgName string, res *sim.Result)
}

// DefaultOptions enables every check.
func DefaultOptions() Options {
	return Options{Timing: true, Interproc: true, CheckProfit: true, Analysis: true, Optimal: true}
}

// Frontend runs parse → check → lower → optimize → verify without the
// profile pass (unlike codegen.FrontendPipeline, it accepts programs that
// trap at run time, which the oracle still needs to cross-check).
func Frontend(src string) (*ir.Module, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: parse: %v", ErrFrontend, err)
	}
	if err := lang.Check(prog); err != nil {
		return nil, fmt.Errorf("%w: check: %v", ErrFrontend, err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		return nil, fmt.Errorf("%w: lower: %v", ErrFrontend, err)
	}
	opt.Optimize(mod)
	for _, fn := range mod.Funcs {
		if err := fn.Verify(); err != nil {
			return nil, fmt.Errorf("%w: verify %s: %v", ErrFrontend, fn.Name, err)
		}
	}
	return mod, nil
}

// schemeCase is one column of the differential matrix.
type schemeCase struct {
	name string
	opts codegen.Options
	time bool // also drive the cycle-level model
}

func (o *Options) cases() []schemeCase {
	frac := o.MaxFPaFraction
	if frac == 0 {
		frac = 0.3
	}
	cs := []schemeCase{
		{name: "none", opts: codegen.Options{Scheme: codegen.SchemeNone}},
		{name: "basic", opts: codegen.Options{Scheme: codegen.SchemeBasic}, time: true},
		{name: "advanced", opts: codegen.Options{Scheme: codegen.SchemeAdvanced, Cost: o.Cost}, time: true},
		{name: "balanced", opts: codegen.Options{Scheme: codegen.SchemeBalanced, Cost: o.Cost, MaxFPaFraction: frac}, time: true},
	}
	if o.Optimal {
		cs = append(cs, schemeCase{
			name: "optimal",
			opts: codegen.Options{Scheme: codegen.SchemeOptimal, Cost: o.Cost},
			time: true,
		})
	}
	if o.Interproc {
		cs = append(cs, schemeCase{
			name: "advanced+interproc",
			opts: codegen.Options{Scheme: codegen.SchemeAdvanced, Cost: o.Cost, InterprocFPArgs: true},
		})
	}
	if o.Analysis {
		cs = append(cs,
			schemeCase{name: "basic+analysis", opts: codegen.Options{Scheme: codegen.SchemeBasic, Analysis: true}, time: true},
			schemeCase{name: "advanced+analysis", opts: codegen.Options{Scheme: codegen.SchemeAdvanced, Cost: o.Cost, Analysis: true}},
		)
	}
	return cs
}

// Check runs src through the reference interpreter and through
// compile→simulate under every scheme case, returning nil when all
// executions agree and every invariant holds. The error is ErrFrontend/
// ErrSkip (wrapped) when the program cannot be judged, or a *Mismatch.
func Check(src string, o Options) error {
	limit := o.StepLimit
	if limit <= 0 {
		limit = 2_000_000
	}
	mod, err := Frontend(src)
	if err != nil {
		return err
	}

	// Reference run. A trap is a legitimate outcome the compiled code must
	// reproduce; a step-limit means no ground truth.
	im := interp.New(mod)
	im.SetStepLimit(limit)
	ref, rerr := im.Run()
	refKind := trap.KindOf(rerr)
	if refKind == trap.KindStepLimit {
		return ErrSkip
	}
	if rerr != nil && refKind == trap.KindNone {
		return &Mismatch{Stage: "interp", Detail: fmt.Sprintf("non-trap interpreter error: %v", rerr)}
	}
	var prof *interp.Profile
	if rerr == nil {
		prof = ref.Profile
	}

	audits := map[string]map[string]*core.Audit{} // case → fn → audit
	for _, c := range o.cases() {
		opts := c.opts
		opts.Profile = prof
		opts.PartitionHook = o.PartitionHook
		res, err := codegen.Compile(mod, opts)
		if err != nil {
			return &Mismatch{Stage: "compile", Scheme: c.name, Detail: err.Error()}
		}
		if err := checkPartitions(c, res, o.PartitionHook != nil); err != nil {
			return err
		}
		audits[c.name] = collectAudits(res)

		// Functional run first: it is cheap and bounded, so a diverging
		// miscompile cannot strand the (slower, loosely-bounded) timing
		// model in an endless loop.
		m := sim.New(res.Prog)
		m.SetStepLimit(limit * 8)
		out, serr := m.Run()
		if err := compareRun(c.name, "", ref, refKind, out, serr); err != nil {
			return err
		}
		if serr == nil {
			if err := checkDynamicStats(c, res, &out.Stats); err != nil {
				return err
			}
		}
		if o.Timing && c.time && serr == nil {
			for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
				tout, st, terr := uarch.Run(res.Prog, cfg)
				if err := compareRun(c.name, cfg.Name, ref, refKind, tout, terr); err != nil {
					return err
				}
				if err := checkTiming(c.name, cfg.Name, &st, tout); err != nil {
					return err
				}
				if o.Faults != nil {
					if err := checkInjected(c.name, cfg, res.Prog, *o.Faults, ref, refKind); err != nil {
						return err
					}
				}
				if o.FastTiming {
					if err := checkFast(c.name, cfg, res.Prog, ref, refKind, o.FastHook); err != nil {
						return err
					}
				}
			}
		}
	}

	if o.CheckProfit && o.PartitionHook == nil {
		if err := checkProfitDominance("basic", audits["basic"], "advanced", audits["advanced"]); err != nil {
			return err
		}
		if o.Optimal {
			if err := checkProfitDominance("advanced", audits["advanced"], "optimal", audits["optimal"]); err != nil {
				return err
			}
		}
		if o.Analysis {
			if err := checkProfitDominance("basic+analysis", audits["basic+analysis"], "advanced+analysis", audits["advanced+analysis"]); err != nil {
				return err
			}
		}
	}
	return nil
}

// compareRun checks one engine run against the reference outcome.
func compareRun(scheme, config string, ref *interp.Result, refKind trap.Kind, out *sim.Result, serr error) error {
	if refKind != trap.KindNone {
		k := trap.KindOf(serr)
		if k != refKind {
			return &Mismatch{Stage: "trap", Scheme: scheme, Config: config,
				Detail: fmt.Sprintf("interp trapped with %v, sim result: kind=%v err=%v", refKind, k, serr)}
		}
		return nil
	}
	if serr != nil {
		return &Mismatch{Stage: "trap", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("interp succeeded but sim failed: %v", serr)}
	}
	if out.Ret != ref.Ret {
		return &Mismatch{Stage: "output", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("exit value %d, interp %d", out.Ret, ref.Ret)}
	}
	if out.Output != ref.Output {
		return &Mismatch{Stage: "output", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("output %q, interp %q", out.Output, ref.Output)}
	}
	return nil
}

// checkPartitions verifies the static per-function partition and its audit
// trail. Audit checks are skipped under fault injection (injected bugs
// falsify them by design).
func checkPartitions(c schemeCase, res *codegen.Result, injected bool) error {
	for fn, p := range res.Partitions {
		if p == nil {
			if c.opts.Scheme != codegen.SchemeNone {
				return &Mismatch{Stage: "partition", Scheme: c.name,
					Detail: fmt.Sprintf("%s: missing partition", fn)}
			}
			continue
		}
		if injected {
			continue
		}
		if err := p.Validate(); err != nil {
			return &Mismatch{Stage: "partition", Scheme: c.name,
				Detail: fmt.Sprintf("%s: %v", fn, err)}
		}
		if err := core.VerifyPartition(p); err != nil {
			return &Mismatch{Stage: "partition", Scheme: c.name,
				Detail: fmt.Sprintf("%s: %v", fn, err)}
		}
		st := p.ComputeStats()
		if c.opts.Scheme == codegen.SchemeBasic && (st.Copies != 0 || st.Dups != 0 || st.OutCopies != 0) {
			return &Mismatch{Stage: "partition", Scheme: c.name,
				Detail: fmt.Sprintf("%s: basic scheme introduced transfers (%d copies, %d dups, %d out-copies)",
					fn, st.Copies, st.Dups, st.OutCopies)}
		}
		if err := checkAudit(c, fn, p, st); err != nil {
			return err
		}
	}
	return nil
}

func checkAudit(c schemeCase, fn string, p *core.Partition, st core.Stats) error {
	a := p.Audit
	if a == nil {
		return &Mismatch{Stage: "audit", Scheme: c.name,
			Detail: fmt.Sprintf("%s: partition carries no audit trail", fn)}
	}
	accepted := 0
	for _, d := range a.Components {
		if d.Accepted {
			accepted++
			if d.Profit < 0 {
				return &Mismatch{Stage: "audit", Scheme: c.name,
					Detail: fmt.Sprintf("%s comp %d: accepted with negative profit %g", fn, d.Component, d.Profit)}
			}
		}
		if a.Scheme == "advanced" {
			if d.Accepted != (d.Profit >= 0) {
				return &Mismatch{Stage: "audit", Scheme: c.name,
					Detail: fmt.Sprintf("%s comp %d: verdict %v inconsistent with profit %g", fn, d.Component, d.Accepted, d.Profit)}
			}
			if d.Profit != d.Benefit-d.Overhead {
				return &Mismatch{Stage: "audit", Scheme: c.name,
					Detail: fmt.Sprintf("%s comp %d: profit %g != benefit %g - overhead %g", fn, d.Component, d.Profit, d.Benefit, d.Overhead)}
			}
		}
		if a.Scheme == "basic" && d.Overhead != 0 {
			return &Mismatch{Stage: "audit", Scheme: c.name,
				Detail: fmt.Sprintf("%s comp %d: basic scheme reports overhead %g", fn, d.Component, d.Overhead)}
		}
	}
	// The audit trail must explain the assignment: offloaded nodes exist
	// iff some component was accepted.
	if st.FPaNodes > 0 && accepted == 0 {
		return &Mismatch{Stage: "audit", Scheme: c.name,
			Detail: fmt.Sprintf("%s: %d FPa nodes but no accepted component", fn, st.FPaNodes)}
	}
	if accepted == 0 && (st.Copies != 0 || st.Dups != 0) {
		return &Mismatch{Stage: "audit", Scheme: c.name,
			Detail: fmt.Sprintf("%s: transfers without any accepted component", fn)}
	}
	return nil
}

// checkDynamicStats ties the functional simulator's dynamic counters back
// to the static partition.
func checkDynamicStats(c schemeCase, res *codegen.Result, st *sim.Stats) error {
	f := st.OffloadFraction()
	if f < 0 || f > 1 || math.IsNaN(f) {
		return &Mismatch{Stage: "output", Scheme: c.name,
			Detail: fmt.Sprintf("offload fraction %g outside [0,1]", f)}
	}
	var fpaNodes, dupNodes int
	for _, p := range res.Partitions {
		if p == nil {
			continue
		}
		ps := p.ComputeStats()
		fpaNodes += ps.FPaNodes
		dupNodes += ps.Dups
	}
	if c.opts.Scheme == codegen.SchemeNone {
		if f != 0 || st.Copies != 0 || st.Dups != 0 {
			return &Mismatch{Stage: "output", Scheme: c.name,
				Detail: fmt.Sprintf("conventional compilation ran FPa work (offload %g, %d copies, %d dups)", f, st.Copies, st.Dups)}
		}
	}
	if st.Copies > 0 && fpaNodes == 0 {
		return &Mismatch{Stage: "output", Scheme: c.name,
			Detail: fmt.Sprintf("%d dynamic copies but empty FPa partition", st.Copies)}
	}
	if st.Dups > 0 && dupNodes == 0 {
		return &Mismatch{Stage: "output", Scheme: c.name,
			Detail: fmt.Sprintf("%d dynamic dups but no duplicated nodes in any partition", st.Dups)}
	}
	return nil
}

// checkInjected drives one fault-injected timing run and asserts the
// detection/recovery discipline: the architectural output is unchanged (a
// detected-and-recovered fault costs cycles, never correctness), the stall
// ledger and per-PC cycle profile still close, and the fault trace agrees
// with the stats counters.
func checkInjected(scheme string, cfg uarch.Config, prog *isa.Program, fc faultinject.Config, ref *interp.Result, refKind trap.Kind) error {
	plan := faultinject.NewPlan(fc)
	out, st, prof, rerr := uarch.RunInjected(prog, cfg, plan)
	config := cfg.Name + "+faults"
	if err := compareRun(scheme, config, ref, refKind, out, rerr); err != nil {
		return err
	}
	if rerr != nil {
		return nil // trap faithfully reproduced; no timing invariants past it
	}
	if err := checkTiming(scheme, config, &st, out); err != nil {
		return err
	}
	if got := prof.TotalAttributed(); got != st.Cycles {
		return &Mismatch{Stage: "fault", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("cycle profile attributes %d of %d cycles under injection", got, st.Cycles)}
	}
	trace := plan.Trace()
	if int64(len(trace)) != st.FaultsInjected {
		return &Mismatch{Stage: "fault", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("trace records %d faults, stats %d", len(trace), st.FaultsInjected)}
	}
	var rec int64
	for _, f := range trace {
		rec += f.Recovery
	}
	if rec != st.FaultRecoveryCycles {
		return &Mismatch{Stage: "fault", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("trace recovery cycles %d, stats %d", rec, st.FaultRecoveryCycles)}
	}
	return nil
}

// checkFast drives one sampled-timing fast-mode run and asserts its
// fidelity contract: the functional result is bit-identical to the
// reference (fast mode shares the functional engine, so any divergence is
// a bug), the instruction count is exact, and the extrapolated stall
// ledger closes. Any violation is a stage-"fast" mismatch.
func checkFast(scheme string, cfg uarch.Config, prog *isa.Program, ref *interp.Result, refKind trap.Kind, hook func(string, *sim.Result)) error {
	fout, fst, ferr := uarch.RunSampled(prog, cfg, uarch.DefaultSampleConfig())
	config := cfg.Name + "+fast"
	if ferr == nil && hook != nil {
		hook(cfg.Name, fout)
	}
	if err := compareRun(scheme, config, ref, refKind, fout, ferr); err != nil {
		var mm *Mismatch
		if errors.As(err, &mm) {
			mm.Stage = "fast"
		}
		return err
	}
	if ferr != nil {
		return nil // trap faithfully reproduced; no timing estimate past it
	}
	if fst.Cycles <= 0 {
		return &Mismatch{Stage: "fast", Scheme: scheme, Config: config, Detail: "zero estimated cycles"}
	}
	if fst.Instructions != fout.Stats.Total {
		return &Mismatch{Stage: "fast", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("estimate carries %d instructions, simulator %d", fst.Instructions, fout.Stats.Total)}
	}
	if e := fst.StallAccountingError(); e != 0 {
		return &Mismatch{Stage: "fast", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("extrapolated stall accounting open by %d cycles", e)}
	}
	return nil
}

// checkTiming verifies the cycle-level model's closed accounting.
func checkTiming(scheme, config string, st *uarch.Stats, out *sim.Result) error {
	if st.Cycles <= 0 {
		return &Mismatch{Stage: "timing", Scheme: scheme, Config: config, Detail: "zero cycles"}
	}
	if st.Instructions != out.Stats.Total {
		return &Mismatch{Stage: "timing", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("pipeline committed %d instructions, simulator %d", st.Instructions, out.Stats.Total)}
	}
	if e := st.StallAccountingError(); e != 0 {
		return &Mismatch{Stage: "timing", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("stall accounting open by %d cycles", e)}
	}
	if st.IssueActiveCycles > st.Cycles {
		return &Mismatch{Stage: "timing", Scheme: scheme, Config: config,
			Detail: fmt.Sprintf("issue-active cycles %d exceed total %d", st.IssueActiveCycles, st.Cycles)}
	}
	return nil
}

func collectAudits(res *codegen.Result) map[string]*core.Audit {
	out := map[string]*core.Audit{}
	for fn, p := range res.Partitions {
		if p != nil && p.Audit != nil {
			out[fn] = p.Audit
		}
	}
	return out
}

// checkProfitDominance enforces one link of the cost-model dominance chain
// optimal ≥ advanced ≥ basic: the stronger scheme (hi) explores a superset
// of the weaker scheme's (lo) legal assignments — advanced starts from
// everything offloadable and retreats only where unprofitable, where basic
// can only take transfer-free components; the exact oracle seeds its
// incumbent with the advanced result — so per function the stronger
// scheme's accepted audit profit must be at least the weaker's. A small
// epsilon absorbs float summation order.
func checkProfitDominance(loName string, lo map[string]*core.Audit, hiName string, hi map[string]*core.Audit) error {
	if lo == nil || hi == nil {
		return nil
	}
	for fn, la := range lo {
		ha := hi[fn]
		if ha == nil {
			continue
		}
		lp := acceptedProfit(la)
		hp := acceptedProfit(ha)
		if hp+1e-6+1e-9*math.Abs(lp) < lp {
			return &Mismatch{Stage: "profit", Scheme: hiName,
				Detail: fmt.Sprintf("%s: %s accepted profit %g below %s %g", fn, hiName, hp, loName, lp)}
		}
	}
	return nil
}

func acceptedProfit(a *core.Audit) float64 {
	var sum float64
	for _, d := range a.Components {
		if d.Accepted {
			sum += d.Profit
		}
	}
	return sum
}
