package difftest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fpint/internal/irgen"
	"fpint/internal/lang"
	"fpint/internal/opt"
)

// FuzzDifferential feeds fuzzer-chosen seeds to the program generator and
// demands the oracle find zero mismatches: every program must behave
// identically in the interpreter and in compiled form under every
// partition scheme. Run with `go test -fuzz FuzzDifferential`.
func FuzzDifferential(f *testing.F) {
	for s := int64(1); s <= 12; s++ {
		f.Add(s, false)
	}
	f.Add(int64(99), true)
	f.Fuzz(func(t *testing.T, seed int64, traps bool) {
		cfg := DefaultGenConfig()
		cfg.Traps = traps
		src := NewGenerator(seed, cfg).Program()
		err := Check(src, Options{Interproc: true, CheckProfit: true})
		if err != nil && !errors.Is(err, ErrSkip) {
			t.Fatalf("seed %d traps=%v: %v\n%s", seed, traps, err, src)
		}
	})
}

// FuzzParser throws arbitrary source at the frontend, seeded with the
// testdata corpus. Anything that parses and checks must (a) survive the
// printer round trip and (b) lower to IR that passes the verifier.
func FuzzParser(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	for _, file := range files {
		if data, err := os.ReadFile(file); err == nil {
			f.Add(string(data))
		}
	}
	f.Add("int main() { return 0; }")
	f.Add("int g[8] = {1, 2}; float f = 0.5; int main() { print(g[1]); return 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return // rejecting garbage is correct behavior
		}
		if err := lang.Check(prog); err != nil {
			return
		}
		out, err := Print(prog)
		if err != nil {
			t.Fatalf("printed source does not print: %v", err)
		}
		p2, err := lang.Parse(out)
		if err != nil {
			t.Fatalf("printed source does not reparse: %v\n%s", err, out)
		}
		if err := lang.Check(p2); err != nil {
			t.Fatalf("printed source does not recheck: %v\n%s", err, out)
		}
		mod, err := irgen.Lower(p2)
		if err != nil {
			return // lowering may reject checked programs (resource limits)
		}
		opt.Optimize(mod)
		for _, fn := range mod.Funcs {
			if err := fn.Verify(); err != nil {
				t.Fatalf("optimized IR fails verification: %v\n%s", err, out)
			}
		}
	})
}
