package difftest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestReplayCrashers re-runs every persisted reproducer under
// testdata/crashers/ through the full oracle. Each file is a bug the fuzzer
// once found and WriteCrasher persisted; replaying them pins the fixes so a
// regression reopens as a test failure instead of waiting for the fuzzer to
// rediscover the same seed. The leading //-comment header (seed, original
// verdict) is ordinary mini-C comment syntax, so files run unmodified.
func TestReplayCrashers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "crashers", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no persisted crashers")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			err = Check(string(data), DefaultOptions())
			if errors.Is(err, ErrSkip) {
				t.Skipf("reference step budget exhausted: %v", err)
			}
			if err != nil {
				t.Errorf("crasher reproduces again: %v", err)
			}
		})
	}
}
