package difftest

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crasherOptions derives the oracle options a persisted reproducer was
// found under: the `// analysis: on|off` header line (written by
// WriteCrasher) selects whether the analysis-sharpened scheme cases run, so
// analysis-dependent partitions reproduce exactly, `// fast: on` adds the
// sampled-timing fast-mode stage for crashers the fast oracle found, and
// `// scheme: optimal` guarantees the exact-oracle scheme case runs for
// crashers the branch-and-bound partition found. Crashers predating the
// headers keep the default (analysis on, optimal on, fast off) — a superset
// of the original scheme cases.
func crasherOptions(src string) Options {
	o := DefaultOptions()
	for _, line := range strings.Split(src, "\n") {
		if !strings.HasPrefix(line, "//") {
			break // header ends at the first non-comment line
		}
		switch strings.TrimSpace(strings.TrimPrefix(line, "//")) {
		case "analysis: on":
			o.Analysis = true
		case "analysis: off":
			o.Analysis = false
		case "fast: on":
			o.FastTiming = true
		case "scheme: optimal":
			o.Optimal = true
		}
	}
	return o
}

// TestReplayCrashers re-runs every persisted reproducer under
// testdata/crashers/ through the full oracle. Each file is a bug the fuzzer
// once found and WriteCrasher persisted; replaying them pins the fixes so a
// regression reopens as a test failure instead of waiting for the fuzzer to
// rediscover the same seed. The leading //-comment header (seed, original
// verdict, analysis mode) is ordinary mini-C comment syntax, so files run
// unmodified.
func TestReplayCrashers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "crashers", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no persisted crashers")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			err = Check(string(data), crasherOptions(string(data)))
			if errors.Is(err, ErrSkip) {
				t.Skipf("reference step budget exhausted: %v", err)
			}
			if err != nil {
				t.Errorf("crasher reproduces again: %v", err)
			}
		})
	}
}
