// Package difftest is the differential-testing subsystem: a seeded random
// generator of well-typed mini-C programs, a multi-scheme semantics oracle
// that cross-checks the IR interpreter against compiled code under every
// partitioning scheme and machine configuration, and a delta-debugging
// reducer that shrinks failing programs to minimal reproducers.
//
// The subsystem machine-checks the paper's central contract: partitioning
// integer work onto the idle floating-point subsystem is semantics
// preserving. Every generated program must produce bit-identical results
// whether it runs on the reference interpreter or as compiled code under
// the basic, advanced, or balanced scheme on any simulated machine.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig bounds the shape of generated programs.
type GenConfig struct {
	// MaxStmts is the total statement budget of the program.
	MaxStmts int
	// MaxDepth bounds statement nesting (loops/conditionals).
	MaxDepth int
	// MaxExprDepth bounds expression nesting.
	MaxExprDepth int
	// MaxLoopIter bounds every counted loop's iteration count.
	MaxLoopIter int
	// Helpers is the maximum number of helper functions.
	Helpers int
	// Floats enables float locals, globals, expressions, and the
	// __itof/__ftoi conversions that create mixed INT/FP dataflow.
	Floats bool
	// Traps permits unguarded integer division/remainder, so generated
	// programs may legitimately trap; the oracle then demands the same
	// trap kind from every execution engine.
	Traps bool
}

// DefaultGenConfig returns the standard fuzzing shape: small, terminating,
// trap-free programs with mixed integer/float dataflow.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxStmts:     24,
		MaxDepth:     3,
		MaxExprDepth: 3,
		MaxLoopIter:  12,
		Helpers:      2,
		Floats:       true,
	}
}

// Generator produces random well-typed mini-C programs. Programs are
// terminating by construction: every loop is a counted loop whose
// induction variable is readable but never a write target, and loop-body
// increments precede any continue.
type Generator struct {
	r    *rand.Rand
	cfg  GenConfig
	sb   strings.Builder
	stmt int // statements emitted so far
	uniq int // unique-name counter

	intArrays []arrayInfo
	fltArrays []arrayInfo
	helpers   []helperInfo
}

type arrayInfo struct {
	name string
	mask int64 // power-of-two length − 1, for index masking
}

type helperInfo struct {
	name   string
	ret    string // "int" or "float"
	params []string
}

// NewGenerator returns a generator for the given seed and configuration.
func NewGenerator(seed int64, cfg GenConfig) *Generator {
	if cfg.MaxStmts == 0 {
		cfg = DefaultGenConfig()
	}
	return &Generator{r: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// scopeVar is a variable visible to expression generation.
type scopeVar struct {
	name     string
	isFloat  bool
	writable bool
}

func (g *Generator) pick(opts ...string) string { return opts[g.r.Intn(len(opts))] }

func (g *Generator) fresh(prefix string) string {
	g.uniq++
	return fmt.Sprintf("%s%d", prefix, g.uniq)
}

func ints(scope []scopeVar) []scopeVar {
	var out []scopeVar
	for _, v := range scope {
		if !v.isFloat {
			out = append(out, v)
		}
	}
	return out
}

func floats(scope []scopeVar) []scopeVar {
	var out []scopeVar
	for _, v := range scope {
		if v.isFloat {
			out = append(out, v)
		}
	}
	return out
}

func writables(vars []scopeVar) []scopeVar {
	var out []scopeVar
	for _, v := range vars {
		if v.writable {
			out = append(out, v)
		}
	}
	return out
}

// intExpr produces an integer-typed expression over the scope.
func (g *Generator) intExpr(scope []scopeVar, depth int) string {
	iv := ints(scope)
	if depth <= 0 || g.r.Intn(4) == 0 {
		if len(iv) > 0 && g.r.Intn(3) != 0 {
			return iv[g.r.Intn(len(iv))].name
		}
		return fmt.Sprintf("%d", g.r.Intn(2001)-1000)
	}
	switch g.r.Intn(12) {
	case 0, 1:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(scope, depth-1),
			g.pick("+", "-", "*", "&", "|", "^"), g.intExpr(scope, depth-1))
	case 2:
		if g.cfg.Traps && g.r.Intn(3) == 0 {
			// Unguarded: the divisor may be zero at run time.
			return fmt.Sprintf("(%s %s %s)", g.intExpr(scope, depth-1),
				g.pick("/", "%"), g.intExpr(scope, depth-1))
		}
		// Guarded by construction: `| 1` makes the divisor odd, hence
		// nonzero.
		return fmt.Sprintf("(%s %s (%s | 1))", g.intExpr(scope, depth-1),
			g.pick("/", "%"), g.intExpr(scope, depth-1))
	case 3:
		return fmt.Sprintf("(%s %s %d)", g.intExpr(scope, depth-1),
			g.pick("<<", ">>"), g.r.Intn(10))
	case 4:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(scope, depth-1),
			g.pick("<", "<=", ">", ">=", "==", "!="), g.intExpr(scope, depth-1))
	case 5:
		return fmt.Sprintf("(%s %s %s)", g.boolExpr(scope, depth-1),
			g.pick("&&", "||"), g.boolExpr(scope, depth-1))
	case 6:
		return fmt.Sprintf("(%s(%s))", g.pick("~", "!"), g.intExpr(scope, depth-1))
	case 7:
		return fmt.Sprintf("(0 - %s)", g.intExpr(scope, depth-1))
	case 8:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(scope, depth-1),
			g.intExpr(scope, depth-1), g.intExpr(scope, depth-1))
	case 9:
		if len(g.intArrays) > 0 {
			a := g.intArrays[g.r.Intn(len(g.intArrays))]
			return fmt.Sprintf("%s[(%s) & %d]", a.name, g.intExpr(scope, depth-1), a.mask)
		}
		return g.intExpr(scope, depth-1)
	case 10:
		if g.cfg.Floats && g.r.Intn(2) == 0 {
			// Mixed dataflow: a float comparison delivers an integer truth
			// value, or a float value is truncated into the integer world.
			if g.r.Intn(2) == 0 {
				return fmt.Sprintf("(%s %s %s)", g.fltExpr(scope, depth-1),
					g.pick("<", "<=", ">", ">=", "==", "!="), g.fltExpr(scope, depth-1))
			}
			return fmt.Sprintf("__ftoi(%s)", g.fltExpr(scope, depth-1))
		}
		return g.intExpr(scope, depth-1)
	default:
		if h := g.intHelper(); h != nil && g.r.Intn(2) == 0 {
			return g.callExpr(*h, scope, depth-1)
		}
		return g.intExpr(scope, depth-1)
	}
}

// boolExpr is an integer expression used as a condition.
func (g *Generator) boolExpr(scope []scopeVar, depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("(%s %s %d)", g.intExpr(scope, 0), g.pick("<", ">", "==", "!="), g.r.Intn(64))
	}
	return fmt.Sprintf("(%s %s %s)", g.intExpr(scope, depth-1),
		g.pick("<", "<=", ">", ">=", "==", "!="), g.intExpr(scope, depth-1))
}

// fltExpr produces a float-typed expression over the scope.
func (g *Generator) fltExpr(scope []scopeVar, depth int) string {
	fv := floats(scope)
	if depth <= 0 || g.r.Intn(4) == 0 {
		if len(fv) > 0 && g.r.Intn(3) != 0 {
			return fv[g.r.Intn(len(fv))].name
		}
		return g.pick("0.5", "1.25", "2.0", "3.5", "0.125", "10.0")
	}
	switch g.r.Intn(8) {
	case 0, 1, 2:
		return fmt.Sprintf("(%s %s %s)", g.fltExpr(scope, depth-1),
			g.pick("+", "-", "*"), g.fltExpr(scope, depth-1))
	case 3:
		// Float division cannot trap; ±Inf/NaN propagate identically
		// through every engine.
		return fmt.Sprintf("(%s / %s)", g.fltExpr(scope, depth-1), g.fltExpr(scope, depth-1))
	case 4:
		return fmt.Sprintf("__itof(%s)", g.intExpr(scope, depth-1))
	case 5:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(scope, depth-1),
			g.fltExpr(scope, depth-1), g.fltExpr(scope, depth-1))
	case 6:
		if len(g.fltArrays) > 0 {
			a := g.fltArrays[g.r.Intn(len(g.fltArrays))]
			return fmt.Sprintf("%s[(%s) & %d]", a.name, g.intExpr(scope, depth-1), a.mask)
		}
		return g.fltExpr(scope, depth-1)
	default:
		if h := g.fltHelper(); h != nil && g.r.Intn(2) == 0 {
			return g.callExpr(*h, scope, depth-1)
		}
		return g.fltExpr(scope, depth-1)
	}
}

func (g *Generator) intHelper() *helperInfo {
	for i := range g.helpers {
		if g.helpers[i].ret == "int" {
			return &g.helpers[i]
		}
	}
	return nil
}

func (g *Generator) fltHelper() *helperInfo {
	for i := range g.helpers {
		if g.helpers[i].ret == "float" {
			return &g.helpers[i]
		}
	}
	return nil
}

func (g *Generator) callExpr(h helperInfo, scope []scopeVar, depth int) string {
	args := make([]string, len(h.params))
	for i, pt := range h.params {
		if pt == "float" {
			args[i] = g.fltExpr(scope, depth)
		} else {
			args[i] = g.intExpr(scope, depth)
		}
	}
	return fmt.Sprintf("%s(%s)", h.name, strings.Join(args, ", "))
}

// stmts emits up to n statements into the current block. inLoop permits
// break/continue (a loop's increment always precedes them, so continue
// cannot skip it).
func (g *Generator) stmts(scope []scopeVar, depth, n int, inLoop bool) []scopeVar {
	for i := 0; i < n; i++ {
		if g.stmt >= g.cfg.MaxStmts {
			return scope
		}
		g.stmt++
		switch g.r.Intn(14) {
		case 0, 1: // integer assignment
			if w := writables(ints(scope)); len(w) > 0 {
				v := w[g.r.Intn(len(w))]
				fmt.Fprintf(&g.sb, "%s %s= %s;\n", v.name,
					g.pick("", "+", "-", "^", "&", "|"), g.intExpr(scope, g.cfg.MaxExprDepth))
				continue
			}
			fallthrough
		case 2: // array store
			if len(g.intArrays) > 0 {
				a := g.intArrays[g.r.Intn(len(g.intArrays))]
				fmt.Fprintf(&g.sb, "%s[(%s) & %d] = %s;\n", a.name,
					g.intExpr(scope, 1), a.mask, g.intExpr(scope, g.cfg.MaxExprDepth))
				continue
			}
			fmt.Fprintf(&g.sb, "print(%s);\n", g.intExpr(scope, 2))
		case 3: // new local
			name := g.fresh("v")
			if g.cfg.Floats && g.r.Intn(3) == 0 {
				fmt.Fprintf(&g.sb, "float %s = %s;\n", name, g.fltExpr(scope, 2))
				scope = append(scope, scopeVar{name: name, isFloat: true, writable: true})
			} else {
				fmt.Fprintf(&g.sb, "int %s = %s;\n", name, g.intExpr(scope, 2))
				scope = append(scope, scopeVar{name: name, writable: true})
			}
		case 4: // if / if-else
			fmt.Fprintf(&g.sb, "if %s {\n", g.boolExpr(scope, 1))
			if depth > 0 {
				g.stmts(scope, depth-1, 1+g.r.Intn(2), inLoop)
			} else {
				fmt.Fprintf(&g.sb, "print(%s);\n", g.intExpr(scope, 1))
			}
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.sb, "} else {\n")
				if depth > 0 {
					g.stmts(scope, depth-1, 1, inLoop)
				} else {
					fmt.Fprintf(&g.sb, "print(%s);\n", g.intExpr(scope, 1))
				}
			}
			fmt.Fprintf(&g.sb, "}\n")
		case 5, 6: // for loop
			iv := g.fresh("i")
			fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n",
				iv, iv, 2+g.r.Intn(g.cfg.MaxLoopIter), iv)
			inner := append(append([]scopeVar{}, scope...), scopeVar{name: iv})
			if depth > 0 {
				g.stmts(inner, depth-1, 1+g.r.Intn(3), true)
			} else {
				fmt.Fprintf(&g.sb, "gacc += %s;\n", iv)
			}
			fmt.Fprintf(&g.sb, "}\n")
		case 7: // while loop with a leading increment
			iv := g.fresh("w")
			fmt.Fprintf(&g.sb, "int %s = 0;\nwhile (%s < %d) {\n%s++;\n",
				iv, iv, 2+g.r.Intn(g.cfg.MaxLoopIter), iv)
			inner := append(append([]scopeVar{}, scope...), scopeVar{name: iv})
			if depth > 0 {
				g.stmts(inner, depth-1, 1+g.r.Intn(2), true)
			} else {
				fmt.Fprintf(&g.sb, "gacc ^= %s;\n", iv)
			}
			fmt.Fprintf(&g.sb, "}\n")
		case 8: // do-while loop with a leading increment
			iv := g.fresh("d")
			fmt.Fprintf(&g.sb, "int %s = 0;\ndo {\n%s++;\n", iv, iv)
			inner := append(append([]scopeVar{}, scope...), scopeVar{name: iv})
			if depth > 0 {
				g.stmts(inner, depth-1, 1, true)
			} else {
				fmt.Fprintf(&g.sb, "gacc += %s;\n", iv)
			}
			fmt.Fprintf(&g.sb, "} while (%s < %d);\n", iv, 1+g.r.Intn(g.cfg.MaxLoopIter))
		case 9: // guarded break/continue
			if inLoop {
				fmt.Fprintf(&g.sb, "if %s { %s; }\n", g.boolExpr(scope, 1), g.pick("break", "continue"))
				continue
			}
			fmt.Fprintf(&g.sb, "gacc += %s;\n", g.intExpr(scope, 2))
		case 10: // output
			if g.cfg.Floats && g.r.Intn(3) == 0 {
				fmt.Fprintf(&g.sb, "printf_(%s);\n", g.fltExpr(scope, 2))
			} else {
				fmt.Fprintf(&g.sb, "print(%s);\n", g.intExpr(scope, 2))
			}
		case 11: // float accumulation
			if g.cfg.Floats {
				if w := writables(floats(scope)); len(w) > 0 {
					v := w[g.r.Intn(len(w))]
					fmt.Fprintf(&g.sb, "%s %s= %s;\n", v.name,
						g.pick("", "+", "-", "*"), g.fltExpr(scope, g.cfg.MaxExprDepth))
					continue
				}
			}
			fmt.Fprintf(&g.sb, "gacc -= %s;\n", g.intExpr(scope, 2))
		case 12: // float array store
			if len(g.fltArrays) > 0 {
				a := g.fltArrays[g.r.Intn(len(g.fltArrays))]
				fmt.Fprintf(&g.sb, "%s[(%s) & %d] = %s;\n", a.name,
					g.intExpr(scope, 1), a.mask, g.fltExpr(scope, 2))
				continue
			}
			fmt.Fprintf(&g.sb, "gacc ^= %s;\n", g.intExpr(scope, 2))
		default: // global accumulation
			fmt.Fprintf(&g.sb, "gacc %s= %s;\n", g.pick("+", "^", "-"),
				g.intExpr(scope, g.cfg.MaxExprDepth))
		}
	}
	return scope
}

// Program generates one complete well-typed program.
func (g *Generator) Program() string {
	g.sb.Reset()
	g.stmt = 0
	g.uniq = 0
	g.intArrays = nil
	g.fltArrays = nil
	g.helpers = nil

	// Globals: an accumulator, one or two integer arrays, optionally a
	// float array and a float global.
	fmt.Fprintf(&g.sb, "int gacc;\n")
	nArr := 1 + g.r.Intn(2)
	for i := 0; i < nArr; i++ {
		ln := int64(8 << g.r.Intn(3)) // 8, 16, or 32
		name := fmt.Sprintf("garr%d", i)
		g.intArrays = append(g.intArrays, arrayInfo{name: name, mask: ln - 1})
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "int %s[%d] = {%d, %d, %d};\n", name, ln,
				g.r.Intn(100), g.r.Intn(100)-50, g.r.Intn(1000))
		} else {
			fmt.Fprintf(&g.sb, "int %s[%d];\n", name, ln)
		}
	}
	if g.cfg.Floats {
		ln := int64(8)
		g.fltArrays = append(g.fltArrays, arrayInfo{name: "gfarr", mask: ln - 1})
		fmt.Fprintf(&g.sb, "float gfarr[%d] = {1.5, 0.25};\n", ln)
	}

	// Helper functions (no recursion: helpers only call earlier helpers).
	nh := 0
	if g.cfg.Helpers > 0 {
		nh = g.r.Intn(g.cfg.Helpers + 1)
	}
	for i := 0; i < nh; i++ {
		h := helperInfo{name: fmt.Sprintf("h%d", i), ret: "int"}
		if g.cfg.Floats && g.r.Intn(3) == 0 {
			h.ret = "float"
		}
		np := 1 + g.r.Intn(3)
		var scope []scopeVar
		var decl []string
		for p := 0; p < np; p++ {
			pt := "int"
			if g.cfg.Floats && g.r.Intn(4) == 0 {
				pt = "float"
			}
			pn := fmt.Sprintf("p%d", p)
			h.params = append(h.params, pt)
			decl = append(decl, fmt.Sprintf("%s %s", pt, pn))
			scope = append(scope, scopeVar{name: pn, isFloat: pt == "float", writable: true})
		}
		prevHelpers := g.helpers // earlier helpers only
		g.helpers = prevHelpers
		fmt.Fprintf(&g.sb, "%s %s(%s) {\n", h.ret, h.name, strings.Join(decl, ", "))
		scope = g.stmts(scope, 1, 2, false)
		if h.ret == "float" {
			fmt.Fprintf(&g.sb, "return %s;\n}\n", g.fltExpr(scope, 2))
		} else {
			fmt.Fprintf(&g.sb, "return %s;\n}\n", g.intExpr(scope, 2))
		}
		g.helpers = append(g.helpers, h)
	}

	// main.
	fmt.Fprintf(&g.sb, "int main() {\n")
	scope := []scopeVar{
		{name: "x", writable: true},
		{name: "y", writable: true},
	}
	fmt.Fprintf(&g.sb, "int x = %d;\nint y = %d;\n", g.r.Intn(200), g.r.Intn(200)-100)
	if g.cfg.Floats {
		fmt.Fprintf(&g.sb, "float fx = %s;\n", g.pick("0.5", "2.5", "1.0"))
		scope = append(scope, scopeVar{name: "fx", isFloat: true, writable: true})
	}
	scope = g.stmts(scope, g.cfg.MaxDepth, 6+g.r.Intn(6), false)
	// Fold everything observable into the exit value.
	if g.cfg.Floats {
		fmt.Fprintf(&g.sb, "printf_(fx);\n")
	}
	fmt.Fprintf(&g.sb, "print(gacc);\n")
	fmt.Fprintf(&g.sb, "return (gacc ^ x ^ y) & 1048575;\n}\n")
	return g.sb.String()
}
