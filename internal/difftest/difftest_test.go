package difftest

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/lang"
)

// TestGeneratorWellTyped: every generated program must survive the full
// frontend — the generator's core contract.
func TestGeneratorWellTyped(t *testing.T) {
	cfgs := map[string]GenConfig{"default": DefaultGenConfig()}
	traps := DefaultGenConfig()
	traps.Traps = true
	cfgs["traps"] = traps
	noFloat := DefaultGenConfig()
	noFloat.Floats = false
	cfgs["nofloat"] = noFloat
	for name, cfg := range cfgs {
		for s := int64(1); s <= 100; s++ {
			src := NewGenerator(s, cfg).Program()
			if _, err := Frontend(src); err != nil {
				t.Fatalf("%s seed %d: %v\n%s", name, s, err, src)
			}
		}
	}
}

// TestGeneratorDeterministic: identical seeds must reproduce byte-identical
// programs (sweeps and crasher seeds depend on it).
func TestGeneratorDeterministic(t *testing.T) {
	for s := int64(1); s <= 10; s++ {
		a := NewGenerator(s, DefaultGenConfig()).Program()
		b := NewGenerator(s, DefaultGenConfig()).Program()
		if a != b {
			t.Fatalf("seed %d: generator is not deterministic", s)
		}
	}
}

// TestOracleAcceptsGenerated: the full oracle (timing included) passes on
// generated programs — the zero-mismatch baseline CI relies on.
func TestOracleAcceptsGenerated(t *testing.T) {
	n := int64(25)
	if testing.Short() {
		n = 5
	}
	for s := int64(1); s <= n; s++ {
		src := NewGenerator(s, DefaultGenConfig()).Program()
		if err := Check(src, DefaultOptions()); err != nil && !errors.Is(err, ErrSkip) {
			t.Fatalf("seed %d: %v\n%s", s, err, src)
		}
	}
}

// TestTrapDifferential: programs that fault must fault identically in the
// interpreter and in compiled code under every scheme.
func TestTrapDifferential(t *testing.T) {
	cases := map[string]string{
		"div-by-zero": "int main() { int x = 0; return 7 / x; }",
		"rem-by-zero": "int main() { int x = 0; int y = 9; return y % x; }",
		"oob-load":    "int g[8]; int main() { int i = 10000000; return g[i]; }",
		"oob-store":   "int g[8]; int main() { int i = 9000000; g[i] = 3; return 0; }",
	}
	for name, src := range cases {
		if err := Check(src, DefaultOptions()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPrinterRoundTrip: printing any checked testdata program must yield
// source that re-parses, re-checks, and reaches the printer fixpoint.
func TestPrinterRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		out, err := Print(prog)
		if err != nil {
			t.Fatalf("%s: print: %v", file, err)
		}
		p2, err := lang.Parse(out)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", file, err, out)
		}
		if err := lang.Check(p2); err != nil {
			t.Fatalf("%s: recheck: %v\n%s", file, err, out)
		}
		if again, err := Print(p2); err != nil || again != out {
			t.Fatalf("%s: printer not a fixpoint (err=%v)", file, err)
		}
	}
}

// TestInjectedBugCaughtAndReduced is the acceptance-criterion test: a
// partitioner bug (component assignment flipped into FPa without its
// mandated copy) must be caught by the oracle and auto-reduced to a
// reproducer of at most 15 lines.
func TestInjectedBugCaughtAndReduced(t *testing.T) {
	o := Options{Interproc: true, PartitionHook: InjectFlip}
	caught := 0
	for s := int64(1); s <= 10; s++ {
		src := NewGenerator(s, DefaultGenConfig()).Program()
		err := Check(src, o)
		if err == nil || errors.Is(err, ErrSkip) {
			continue
		}
		caught++
		var mm *Mismatch
		if !errors.As(err, &mm) {
			t.Fatalf("seed %d: expected a *Mismatch, got %v", s, err)
		}
		red := ReduceFailure(src, err, o)
		if red == "" {
			t.Fatalf("seed %d: reduction failed for %v", s, err)
		}
		lines := strings.Count(red, "\n")
		if lines > 15 {
			t.Fatalf("seed %d: reproducer has %d lines (>15):\n%s", s, lines, red)
		}
		// The reproducer must still trip the buggy compiler and pass the
		// healthy one.
		if err := Check(red, o); err == nil {
			t.Fatalf("seed %d: reduced program no longer fails:\n%s", s, red)
		}
		healthy := o
		healthy.PartitionHook = nil
		if err := Check(red, healthy); err != nil {
			t.Fatalf("seed %d: reduced program fails without the injected bug: %v\n%s", s, err, red)
		}
	}
	if caught < 3 {
		t.Fatalf("injected bug caught on only %d/10 seeds", caught)
	}
}

// TestSweepAndWriteCrasher: the sweep surfaces injected failures and
// persists deterministic reproducer files.
func TestSweepAndWriteCrasher(t *testing.T) {
	o := Options{PartitionHook: InjectFlip}
	res := Sweep(1, 4, DefaultGenConfig(), o, true)
	if len(res.Failures) == 0 {
		t.Fatal("sweep found no injected failures")
	}
	dir := t.TempDir()
	f := res.Failures[0]
	path, err := WriteCrasher(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if !strings.Contains(body, "// fpifuzz reproducer") || !strings.Contains(body, "int main") {
		t.Fatalf("malformed crasher file:\n%s", body)
	}
	// Idempotent naming: rewriting the same failure lands on the same file.
	again, err := WriteCrasher(dir, f)
	if err != nil || again != path {
		t.Fatalf("crasher naming not deterministic: %s vs %s (%v)", path, again, err)
	}
}

// TestSweepCleanBaseline: a healthy sweep reports zero failures.
func TestSweepCleanBaseline(t *testing.T) {
	res := Sweep(300, 10, DefaultGenConfig(), Options{Interproc: true, CheckProfit: true}, false)
	if len(res.Failures) != 0 {
		t.Fatalf("clean sweep failed: %+v", res.Failures[0])
	}
	if res.Ran == 0 {
		t.Fatal("sweep judged nothing")
	}
}

// TestReduceRequiresFailure: the reducer refuses inputs whose canonical
// form does not fail the predicate.
func TestReduceRequiresFailure(t *testing.T) {
	src := "int main() { return 1; }"
	out, ok := Reduce(src, func(string) bool { return false })
	if ok || out != src {
		t.Fatalf("Reduce fabricated a failure: ok=%v out=%q", ok, out)
	}
}
