package difftest

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// TestOptimalOracleCleanBaseline: with the exact-oracle scheme case on
// (the default), generated programs must pass the whole oracle — the
// branch-and-bound partition must be bit-exact with the reference
// interpreter and verifier-clean on arbitrary programs, not just testdata,
// and its accepted profit must dominate the advanced scheme's.
func TestOptimalOracleCleanBaseline(t *testing.T) {
	o := DefaultOptions()
	if !o.Optimal {
		t.Fatal("DefaultOptions does not enable the exact-oracle scheme case")
	}
	n := int64(10)
	if testing.Short() {
		n = 3
	}
	for s := int64(1); s <= n; s++ {
		src := NewGenerator(s, DefaultGenConfig()).Program()
		if err := Check(src, o); err != nil && !errors.Is(err, ErrSkip) {
			t.Fatalf("seed %d: %v\n%s", s, err, src)
		}
	}
}

// TestOptimalCrasherRoundTrip: a failure found while the exact-oracle
// scheme case was on must persist with the `// scheme: optimal` header and
// the persisted file must auto-replay through an optimal-enabled oracle —
// cleanly once the bug (the planted hook) is gone, and failing again when
// the bug is re-planted, mirroring the fast-mode crasher workflow.
func TestOptimalCrasherRoundTrip(t *testing.T) {
	o := DefaultOptions()
	o.Timing = false // the planted bug is functional; timing only slows the sweep
	o.PartitionHook = InjectFlip

	res := Sweep(1, 6, DefaultGenConfig(), o, true)
	if len(res.Failures) == 0 {
		t.Fatal("sweep did not catch the planted partitioner bug")
	}
	f := res.Failures[0]
	if !f.Optimal {
		t.Fatal("failure from an optimal-enabled sweep does not record Optimal")
	}

	dir := t.TempDir()
	path, err := WriteCrasher(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if !strings.Contains(body, "// scheme: optimal\n") {
		t.Fatalf("crasher misses the optimal-scheme header:\n%s", body)
	}

	// Auto-replay: crasherOptions must keep the exact-oracle case on, and
	// the file must replay clean without the planted hook (the "fixed"
	// state TestReplayCrashers pins for every persisted crasher).
	ro := crasherOptions(body)
	if !ro.Optimal {
		t.Fatal("crasherOptions did not enable the exact-oracle case from the header")
	}
	if err := Check(body, ro); err != nil && !errors.Is(err, ErrSkip) {
		t.Errorf("optimal crasher does not replay clean without the planted bug: %v", err)
	}

	// And with the hook re-planted the replay must still fail — the file
	// really does reproduce the bug it documents.
	ro.PartitionHook = InjectFlip
	ro.Timing = false
	err = Check(body, ro)
	if errors.Is(err, ErrSkip) {
		t.Skip("reference step budget exhausted on replay")
	}
	var rm *Mismatch
	if !errors.As(err, &rm) {
		t.Errorf("replay with the planted bug did not reproduce a mismatch: %v", err)
	}
}
