package difftest

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// TestFastOracleCleanBaseline: with the sampled-timing stage on, generated
// programs must still pass the whole oracle — fast mode shares the
// functional engine, so its output is bit-identical by construction and
// its extrapolated ledger must close on arbitrary programs, not just
// testdata.
func TestFastOracleCleanBaseline(t *testing.T) {
	o := DefaultOptions()
	o.FastTiming = true
	n := int64(10)
	if testing.Short() {
		n = 3
	}
	for s := int64(1); s <= n; s++ {
		src := NewGenerator(s, DefaultGenConfig()).Program()
		if err := Check(src, o); err != nil && !errors.Is(err, ErrSkip) {
			t.Fatalf("seed %d: %v\n%s", s, err, src)
		}
	}
}

// TestFastMismatchPersistedAndReplayed is the fast-mode crasher-workflow
// regression test: a planted fast-vs-detailed functional mismatch
// (InjectFastSkew) must be caught by the sweep as a stage-"fast" mismatch,
// persisted as a crasher file carrying the `// fast: on` header, and the
// persisted file must auto-replay through the same fast-enabled oracle —
// cleanly once the bug (the hook) is gone, mirroring how every other
// crasher pins its fix.
func TestFastMismatchPersistedAndReplayed(t *testing.T) {
	o := DefaultOptions()
	o.FastTiming = true
	o.FastHook = InjectFastSkew

	res := Sweep(1, 4, DefaultGenConfig(), o, true)
	if len(res.Failures) == 0 {
		t.Fatal("sweep did not catch the planted fast-mode skew")
	}
	f := res.Failures[0]
	var mm *Mismatch
	if !errors.As(f.Err, &mm) {
		t.Fatalf("expected a *Mismatch, got %v", f.Err)
	}
	if mm.Stage != "fast" {
		t.Fatalf("planted fast skew reported as stage %q, want \"fast\": %v", mm.Stage, f.Err)
	}
	if !strings.Contains(mm.Config, "+fast") {
		t.Errorf("fast mismatch config %q does not mark the fast mode", mm.Config)
	}
	if f.Reduced == "" {
		t.Errorf("fast-stage failure was not reduced (reduction must keep the fast stage on)")
	}

	// Persist — the crasher must carry the fast header.
	dir := t.TempDir()
	path, err := WriteCrasher(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if !strings.Contains(body, "// fast: on") {
		t.Fatalf("crasher misses the fast header:\n%s", body)
	}

	// Auto-replay: crasherOptions must re-enable the fast stage, and the
	// file must replay clean without the planted hook (the "fixed" state
	// TestReplayCrashers pins for every persisted crasher).
	ro := crasherOptions(body)
	if !ro.FastTiming {
		t.Fatal("crasherOptions did not re-enable the fast stage from the header")
	}
	if err := Check(body, ro); err != nil && !errors.Is(err, ErrSkip) {
		t.Errorf("fast crasher does not replay clean without the planted bug: %v", err)
	}

	// And with the hook re-planted the replay must still fail — the file
	// really does reproduce the bug it documents.
	ro.FastHook = InjectFastSkew
	err = Check(body, ro)
	if errors.Is(err, ErrSkip) {
		t.Skip("reference step budget exhausted on replay")
	}
	var rm *Mismatch
	if !errors.As(err, &rm) || rm.Stage != "fast" {
		t.Errorf("replay with the planted bug did not reproduce a fast mismatch: %v", err)
	}
}
