package service

import (
	"io"
	"sync/atomic"

	"fpint/internal/fperr"
	"fpint/internal/obs"
)

// stats is the daemon's operational counter set. obs.Registry is not
// concurrency-safe, so the live counters are atomics; Render builds a
// fresh registry per /statsz request and hands it to the deterministic
// registry encoders. Every counter is emitted even at zero, so the
// /statsz key set is stable from the first request — the golden test pins
// it.
type stats struct {
	accepted  atomic.Int64
	shed      atomic.Int64
	completed atomic.Int64
	panics    atomic.Int64

	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	cacheTampered atomic.Int64
	cacheEntries  atomic.Int64

	// outcomes counts terminal responses per fperr class, indexed by the
	// class value (the slice is sized once from fperr.Classes).
	outcomes []atomic.Int64

	draining atomic.Bool
}

func newStats() *stats {
	return &stats{outcomes: make([]atomic.Int64, len(fperr.Classes()))}
}

// outcome records one terminal response of the given class.
func (s *stats) outcome(c fperr.Class) {
	if i := int(c); i >= 0 && i < len(s.outcomes) {
		s.outcomes[i].Add(1)
	}
}

// render builds the /statsz registry snapshot.
func (s *stats) render() *obs.Registry {
	reg := obs.NewRegistry()
	p := obs.PrefixService
	reg.Counter(p + obs.MetricServiceAccepted).Add(s.accepted.Load())
	reg.Counter(p + obs.MetricServiceShed).Add(s.shed.Load())
	reg.Counter(p + obs.MetricServiceCompleted).Add(s.completed.Load())
	reg.Counter(p + obs.MetricServicePanicsRecovered).Add(s.panics.Load())
	reg.Counter(p + obs.MetricServiceCacheHits).Add(s.cacheHits.Load())
	reg.Counter(p + obs.MetricServiceCacheMisses).Add(s.cacheMisses.Load())
	reg.Counter(p + obs.MetricServiceCacheTampered).Add(s.cacheTampered.Load())
	reg.Gauge(p + obs.MetricServiceCacheEntries).Set(float64(s.cacheEntries.Load()))
	for _, c := range fperr.Classes() {
		reg.Counter(p + obs.MetricServiceOutcomePrefix + c.String()).Add(s.outcomes[c].Load())
	}
	d := 0.0
	if s.draining.Load() {
		d = 1
	}
	reg.Gauge(p + obs.MetricServiceDraining).Set(d)
	return reg
}

// writeJSON streams the snapshot as the registry's JSON document.
func (s *stats) writeJSON(w io.Writer) error { return s.render().WriteJSON(w) }
