package service

import (
	"strings"
	"testing"

	"fpint/internal/fperr"
)

// TestCacheKeyStability pins the content address of a fixed job to a
// literal. The key is the cache's identity across process restarts and
// the dedup boundary between daemons; an accidental change to the key
// recipe (field order, a forgotten field, a changed prefix) breaks this
// literal, not production hit rates.
func TestCacheKeyStability(t *testing.T) {
	j, err := parseRequest(KindSimulate, &Request{
		Source: "int main() { return 42; }",
		Scheme: "advanced",
		Config: "8way",
		Timing: "fast",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	const want = "33b064d407417f9a037c9fddbb29a8e1e2bacb10617b6f1c49524485a510ee27"
	if got := j.cacheKey(); got != want {
		t.Errorf("cacheKey = %q, want pinned %q", got, want)
	}
}

// TestCacheKeySensitivity: every content field must move the key, and the
// deadline must not (it is policy, not content).
func TestCacheKeySensitivity(t *testing.T) {
	base := Request{Source: "int main() { return 0; }", Scheme: "advanced", Config: "4way", Timing: "detailed"}
	key := func(kind string, req Request) string {
		t.Helper()
		j, err := parseRequest(kind, &req)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return j.cacheKey()
	}
	ref := key(KindSimulate, base)

	mutations := map[string]string{}
	{
		r := base
		r.Source = "int main() { return 1; }"
		mutations["source"] = key(KindSimulate, r)
	}
	{
		r := base
		r.Scheme = "basic"
		mutations["scheme"] = key(KindSimulate, r)
	}
	{
		r := base
		r.Config = "8way"
		mutations["config"] = key(KindSimulate, r)
	}
	{
		r := base
		r.Analysis = "on"
		mutations["analysis"] = key(KindSimulate, r)
	}
	{
		r := base
		r.Timing = "fast"
		mutations["timing"] = key(KindSimulate, r)
	}
	{
		r := base
		r.StepBudget = 5000
		mutations["stepBudget"] = key(KindSimulate, r)
	}
	mutations["kind"] = key(KindCompile, Request{Source: base.Source, Scheme: base.Scheme, Config: base.Config})

	seen := map[string]string{ref: "base"}
	for field, k := range mutations {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s did not change the key (collides with %s)", field, prev)
		}
		seen[k] = field
	}

	r := base
	r.DeadlineMS = 250
	if key(KindSimulate, r) != ref {
		t.Error("deadline changed the cache key; deadlines are policy, not content, and must share entries")
	}
}

// TestCacheTamperRefusal: a sealed entry whose content was mutated behind
// the cache's back is refused, evicted, counted, and recomputed — the
// runstore contract applied to the artifact cache.
func TestCacheTamperRefusal(t *testing.T) {
	st := newStats()
	c := newCache(8, st)
	art := &Artifact{
		Key:   "k1",
		Class: fperr.ClassNone,
		Resp:  &Response{Schema: ResponseSchema, Kind: KindCompile, Key: "k1", Class: "none"},
	}
	computes := 0
	compute := func() (*Artifact, error) { computes++; return art, nil }

	if _, cached, _ := c.do("k1", true, compute); cached {
		t.Fatal("first do() reported a cache hit")
	}
	if _, cached, _ := c.do("k1", true, compute); !cached {
		t.Fatal("second do() missed")
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}

	// Flip a bit inside the sealed entry.
	if !c.tamper("k1", func(a *Artifact) { a.Resp.Class = "internal" }) {
		t.Fatal("entry to tamper not found")
	}

	fresh := &Artifact{Key: "k1", Class: fperr.ClassNone,
		Resp: &Response{Schema: ResponseSchema, Kind: KindCompile, Key: "k1", Class: "none"}}
	compute2 := func() (*Artifact, error) { computes++; return fresh, nil }
	got, cached, _ := c.do("k1", true, compute2)
	if cached {
		t.Error("tampered entry was served from cache")
	}
	if computes != 2 {
		t.Errorf("tampered entry did not trigger recomputation (computes=%d)", computes)
	}
	if got.Resp.Class != "none" {
		t.Errorf("served class %q from tampered entry", got.Resp.Class)
	}
	if st.cacheTampered.Load() != 1 {
		t.Errorf("cacheTampered = %d, want 1", st.cacheTampered.Load())
	}
	// The recomputed artifact replaced the tampered one and verifies.
	if _, cached, _ := c.do("k1", true, func() (*Artifact, error) { t.Fatal("unexpected recompute"); return nil, nil }); !cached {
		t.Error("recomputed entry not served from cache")
	}
}

// TestCacheDoesNotStoreErrors: error-class artifacts are never cached —
// a transient internal failure must not be pinned under a content key.
func TestCacheDoesNotStoreErrors(t *testing.T) {
	st := newStats()
	c := newCache(8, st)
	for _, class := range []fperr.Class{fperr.ClassUsage, fperr.ClassInput, fperr.ClassInternal, fperr.ClassUnavailable} {
		computes := 0
		compute := func() (*Artifact, error) {
			computes++
			return &Artifact{Key: "e", Class: class, Resp: &Response{Class: class.String()}}, nil
		}
		c.do("e", true, compute)
		c.do("e", true, compute)
		if computes != 2 {
			t.Errorf("class %s: computes = %d, want 2 (errors are not cacheable)", class, computes)
		}
	}
}

// TestCacheBounded: the cache never exceeds its capacity.
func TestCacheBounded(t *testing.T) {
	st := newStats()
	c := newCache(4, st)
	for i := 0; i < 32; i++ {
		key := strings.Repeat("k", i+1)
		c.do(key, true, func() (*Artifact, error) {
			return &Artifact{Key: key, Class: fperr.ClassNone, Resp: &Response{Key: key, Class: "none"}}, nil
		})
	}
	if n := c.len(); n > 4 {
		t.Errorf("cache grew to %d entries, cap 4", n)
	}
	if st.cacheEntries.Load() != int64(c.len()) {
		t.Errorf("entries gauge %d != live count %d", st.cacheEntries.Load(), c.len())
	}
}
