package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"fpint/internal/fperr"
)

// Artifact is one sealed cache entry: the response document produced by a
// successful (or degraded) job, content-addressed by the job key and
// protected by a hash over its encoded payload. Like a runstore record, a
// sealed artifact that no longer verifies is corruption, not data: Get
// refuses and evicts it rather than serving it.
type Artifact struct {
	Key      string
	Class    fperr.Class
	Degraded bool
	// Resp is the stored payload with Cached=false; handlers serve a copy
	// with Cached set. It must not be mutated after Seal.
	Resp *Response
	// Hash is the hex SHA-256 of the sealed content.
	Hash string
}

// ComputeHash hashes the artifact's content: key, class, degraded flag,
// and the canonical JSON encoding of the payload.
func (a *Artifact) ComputeHash() string {
	h := sha256.New()
	h.Write([]byte(a.Key))
	h.Write([]byte{0})
	h.Write([]byte(a.Class.String()))
	h.Write([]byte{0})
	if a.Degraded {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	body, err := json.Marshal(a.Resp)
	if err != nil {
		// An unencodable payload can never verify; the sentinel keeps
		// Seal/Verify total.
		return "unencodable"
	}
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// Seal stamps the content hash.
func (a *Artifact) Seal() { a.Hash = a.ComputeHash() }

// Verify reports whether the sealed hash still matches the content.
func (a *Artifact) Verify() bool { return a.Hash != "" && a.Hash == a.ComputeHash() }

// cacheable reports whether the artifact may be stored: only clean and
// degraded successes. Errors are recomputed — a transient internal failure
// must not be pinned forever under a content key.
func (a *Artifact) cacheable() bool {
	return a.Class == fperr.ClassNone || a.Class == fperr.ClassDegraded
}

// flight is one in-progress computation that identical concurrent jobs
// can wait on.
type flight struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// cache is the content-addressed artifact store with integrated
// singleflight. All bookkeeping is under one mutex; computations run
// outside it.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*Artifact
	flights map[string]*flight
	stats   *stats
}

func newCache(capacity int, st *stats) *cache {
	return &cache{
		cap:     capacity,
		entries: make(map[string]*Artifact),
		flights: make(map[string]*flight),
		stats:   st,
	}
}

// get returns the verified entry for key, evicting and counting a
// tampered one. Callers hold c.mu.
func (c *cache) getLocked(key string) (*Artifact, bool) {
	a, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if !a.Verify() {
		delete(c.entries, key)
		c.stats.cacheTampered.Add(1)
		c.stats.cacheEntries.Add(-1)
		return nil, false
	}
	return a, true
}

// do serves key from the cache, joins an in-flight identical computation
// (when share is true), or runs compute and stores a cacheable result.
// The returned bool reports whether the artifact came from the cache or a
// shared flight rather than this caller's own compute. compute's error is
// reserved for refusals to run (load shed, drain); job failures travel
// inside the artifact.
func (c *cache) do(key string, share bool, compute func() (*Artifact, error)) (*Artifact, bool, error) {
	c.mu.Lock()
	if a, ok := c.getLocked(key); ok {
		c.stats.cacheHits.Add(1)
		c.mu.Unlock()
		return a, true, nil
	}
	c.stats.cacheMisses.Add(1)
	if share {
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, false, f.err
			}
			// The leader did the work; for the follower this is a hit in
			// every sense that matters (no recomputation).
			c.stats.cacheHits.Add(1)
			return f.art, true, nil
		}
	}
	var f *flight
	if share {
		f = &flight{done: make(chan struct{})}
		c.flights[key] = f
	}
	c.mu.Unlock()

	art, err := compute()

	c.mu.Lock()
	if err == nil && art != nil && art.cacheable() {
		if _, exists := c.entries[key]; !exists {
			if len(c.entries) >= c.cap {
				// The cache is bounded; shedding an arbitrary entry keeps
				// admission O(1) without an ordering structure. Hit rates
				// under churn are a caller concern, correctness is not:
				// every entry is recomputable.
				for k := range c.entries {
					delete(c.entries, k)
					c.stats.cacheEntries.Add(-1)
					break
				}
			}
			art.Seal()
			c.entries[key] = art
			c.stats.cacheEntries.Add(1)
		}
	}
	if f != nil {
		f.art, f.err = art, err
		delete(c.flights, key)
		close(f.done)
	}
	c.mu.Unlock()
	return art, false, err
}

// len reports the live entry count (tests).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// tamper mutates the stored entry for key through fn, re-marshalling
// nothing — the seal is left stale on purpose. Test hook for the
// tamper-refusal contract.
func (c *cache) tamper(key string, fn func(*Artifact)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[key]
	if ok {
		fn(a)
	}
	return ok
}
