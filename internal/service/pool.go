package service

import (
	"hash/fnv"
	"sync"

	"fpint/internal/fperr"
	"fpint/internal/uarch"
)

// errShed is returned by submit when the shard queue is full or the pool
// is draining; the HTTP rim turns it into 503 + Retry-After.
var errShed = fperr.New(fperr.ClassUnavailable, "server overloaded or draining; retry later")

// task is one queued job. The worker fills art (or leaves shed=true when
// the pool drained underneath it) and closes done.
type task struct {
	run  func(ws *workerState) *Artifact
	art  *Artifact
	shed bool
	done chan struct{}
}

// workerState is per-worker warm machinery. Simulation machines are
// reusable across runs with zero steady-state allocation, so each worker
// keeps one per machine configuration instead of rebuilding the pipeline
// every job. A recovered panic discards the state: a machine abandoned
// mid-run is not known to be consistent.
type workerState struct {
	machines map[string]*uarch.Machine
}

// machine returns the worker's warm machine for cfg, building it on first
// use.
func (ws *workerState) machine(cfg uarch.Config) *uarch.Machine {
	if m, ok := ws.machines[cfg.Name]; ok {
		return m
	}
	m := uarch.NewMachine(cfg)
	ws.machines[cfg.Name] = m
	return m
}

// reset discards the warm machines (after a recovered panic).
func (ws *workerState) reset() { ws.machines = make(map[string]*uarch.Machine) }

// pool is the sharded bounded worker pool. Each shard is one worker with
// one bounded queue; jobs hash to shards by cache key, so identical jobs
// serialize on the same worker (complementing the cache's singleflight)
// and a pathological job class cannot occupy every worker.
type pool struct {
	mu       sync.RWMutex
	draining bool
	shards   []chan *task
	wg       sync.WaitGroup
}

// newPool starts workers goroutines, each with a queue of depth slots.
func newPool(workers, depth int) *pool {
	p := &pool{shards: make([]chan *task, workers)}
	for i := range p.shards {
		ch := make(chan *task, depth)
		p.shards[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ws := &workerState{machines: make(map[string]*uarch.Machine)}
			for t := range ch {
				if p.isDraining() {
					// The job was queued when the drain started: shed it
					// rather than starting new work.
					t.shed = true
					close(t.done)
					continue
				}
				t.art = t.run(ws)
				close(t.done)
			}
		}()
	}
	return p
}

func (p *pool) isDraining() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.draining
}

// submit enqueues t on key's shard, or refuses with errShed when the
// shard queue is full or the pool is draining. The read lock spans the
// send so a submit cannot race the drain's channel close.
func (p *pool) submit(key string, t *task) error {
	h := fnv.New32a()
	h.Write([]byte(key))
	shard := p.shards[int(h.Sum32())%len(p.shards)]

	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return errShed
	}
	select {
	case shard <- t:
		return nil
	default:
		return errShed
	}
}

// drain stops admission, lets in-flight jobs finish, sheds everything
// still queued, and waits for the workers to exit.
func (p *pool) drain() {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.draining = true
	for _, ch := range p.shards {
		close(ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
