// Package loadgen drives load — including a chaos mix — against a running
// fpintd and reports latency percentiles, throughput, shed rate, and
// cache hit rate as a deterministic fpint-load/v1 document. It is a
// library so the root acceptance test can run it in-process against an
// httptest server; cmd/fpiload is the CLI rim.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fpint/internal/bench"
)

// Job flavors in the generated mix. Each flavor exercises one slice of
// the daemon's robustness contract.
const (
	// FlavorOK is a valid job drawn from a small rotating set of
	// (endpoint, program, scheme, config) combinations — repeats hit the
	// artifact cache.
	FlavorOK = "ok"
	// FlavorMalformed is a request the daemon must 400: broken JSON or an
	// unknown scheme.
	FlavorMalformed = "malformed"
	// FlavorTrap is a program that faults at its profile run
	// (divide-by-zero) — 422.
	FlavorTrap = "trap"
	// FlavorOverBudget is a long-running job with a tiny step budget —
	// 422 via the step-limit watchdog.
	FlavorOverBudget = "over-budget"
	// FlavorPanic asks a chaos-mode daemon to panic mid-job; the recover
	// barrier must turn it into a 500, not a process death.
	FlavorPanic = "panic"
)

// okSrc is the valid-job program: a short arithmetic loop, heavy enough
// to exercise the partitioner, light enough for thousands of requests.
const okSrc = `
int acc;
int main() {
	for (int i = 1; i < 400; i++) {
		acc = acc + i * 3 - (i >> 1);
		if (acc > 100000) acc = acc - 100000;
	}
	return acc;
}
`

// trapSrc divides by a zero global during the frontend self-profile run.
const trapSrc = `
int z;
int main() { return 7 / z; }
`

// slowSrc runs long enough that a tiny step budget always trips.
const slowSrc = `
int acc;
int main() {
	for (int i = 0; i < 1000000; i++) acc = acc + i;
	return acc;
}
`

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Label replaces BaseURL in the report's target field (the acceptance
	// test uses "inprocess" so goldens do not embed ephemeral ports).
	Label string
	// Client defaults to a client with a 60 s timeout.
	Client *http.Client
	// Requests is the total request count (default 100).
	Requests int
	// Workers is the concurrency (default 8).
	Workers int
	// Seed drives the deterministic flavor/parameter choice per request
	// index; the same seed and config generate the same request sequence.
	Seed int64
	// Mix weights each flavor (default DefaultMix). Flavors with weight 0
	// are not sent.
	Mix map[string]int
	// Workloads optionally replaces the built-in ok-flavor program with
	// named bench workloads, rotated per request.
	Workloads []string
}

// DefaultMix is a mostly-valid mix with every chaos flavor represented.
func DefaultMix() map[string]int {
	return map[string]int{
		FlavorOK:         12,
		FlavorMalformed:  2,
		FlavorTrap:       2,
		FlavorOverBudget: 2,
		FlavorPanic:      2,
	}
}

// request is one generated request.
type request struct {
	flavor string
	path   string
	body   []byte
}

// okScheme/okConfig/okTiming rotate the valid-job parameter space so the
// run touches both Table 1 machine configurations and every scheme while
// still re-hitting each combination (cache hits).
var (
	okSchemes = []string{"none", "basic", "advanced", "balanced"}
	okConfigs = []string{"4way", "8way"}
	okTimings = []string{"functional", "fast", "detailed"}
)

// generate builds the deterministic request sequence.
func generate(cfg *Config) []request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var flavors []string
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	for _, f := range []string{FlavorOK, FlavorMalformed, FlavorTrap, FlavorOverBudget, FlavorPanic} {
		for i := 0; i < mix[f]; i++ {
			flavors = append(flavors, f)
		}
	}
	if len(flavors) == 0 {
		flavors = []string{FlavorOK}
	}

	reqs := make([]request, cfg.Requests)
	for i := range reqs {
		f := flavors[rng.Intn(len(flavors))]
		reqs[i] = buildRequest(f, i, rng, cfg)
	}
	return reqs
}

func buildRequest(flavor string, i int, rng *rand.Rand, cfg *Config) request {
	enc := func(v map[string]any) []byte {
		b, _ := json.Marshal(v)
		return b
	}
	switch flavor {
	case FlavorMalformed:
		if i%2 == 0 {
			return request{flavor, "/v1/compile", []byte(`{"source": "int main() { return 0; }"`)} // truncated JSON
		}
		return request{flavor, "/v1/simulate", enc(map[string]any{"source": "int main() { return 0; }", "scheme": "warp"})}
	case FlavorTrap:
		return request{flavor, "/v1/simulate", enc(map[string]any{"source": trapSrc, "timing": "functional"})}
	case FlavorOverBudget:
		return request{flavor, "/v1/simulate", enc(map[string]any{"source": slowSrc, "timing": "functional", "stepBudget": 1000})}
	case FlavorPanic:
		return request{flavor, "/v1/compile", enc(map[string]any{"panic": true})}
	}
	// FlavorOK: rotate endpoint and parameters.
	body := map[string]any{"scheme": okSchemes[rng.Intn(len(okSchemes))]}
	if len(cfg.Workloads) > 0 {
		body["workload"] = cfg.Workloads[rng.Intn(len(cfg.Workloads))]
	} else {
		body["source"] = okSrc
	}
	path := "/v1/compile"
	switch rng.Intn(3) {
	case 1:
		path = "/v1/partition"
	case 2:
		path = "/v1/simulate"
		body["config"] = okConfigs[rng.Intn(len(okConfigs))]
		body["timing"] = okTimings[rng.Intn(len(okTimings))]
	}
	return request{FlavorOK, path, enc(body)}
}

// respBody is the slice of the daemon response the loadgen reads.
type respBody struct {
	Class  string `json:"class"`
	Cached bool   `json:"cached"`
}

// Run executes the configured load and aggregates the report. The request
// sequence is deterministic; wall-clock fields are not (Normalize zeroes
// them for golden comparison).
func Run(cfg Config) (*bench.LoadReport, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	reqs := generate(&cfg)

	type outcome struct {
		flavor    string
		status    int
		class     string
		cached    bool
		transport bool
		latency   time.Duration
	}
	outcomes := make([]outcome, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				r := reqs[i]
				t0 := time.Now()
				resp, err := client.Post(cfg.BaseURL+r.path, "application/json", bytes.NewReader(r.body))
				lat := time.Since(t0)
				o := outcome{flavor: r.flavor, latency: lat}
				if err != nil {
					o.transport = true
				} else {
					var body respBody
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					json.Unmarshal(data, &body)
					o.status = resp.StatusCode
					o.class = body.Class
					o.cached = body.Cached
					if o.class == "" {
						o.class = "unparsed"
					}
				}
				outcomes[i] = o
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &bench.LoadReport{
		Schema:  bench.LoadReportSchema,
		Target:  cfg.BaseURL,
		Workers: cfg.Workers,
	}
	if cfg.Label != "" {
		rep.Target = cfg.Label
	}
	mixCount := map[string]int64{}
	outcomeCount := map[[2]string]int64{}
	statusOf := map[[2]string]int{}
	var lats []time.Duration
	for _, o := range outcomes {
		mixCount[o.flavor]++
		if o.transport {
			rep.TransportErrors++
			continue
		}
		rep.Requests++
		lats = append(lats, o.latency)
		k := [2]string{fmt.Sprintf("%03d", o.status), o.class}
		outcomeCount[k]++
		statusOf[k] = o.status
		if o.status == http.StatusServiceUnavailable {
			rep.Shed++
		}
		if o.cached {
			rep.CacheHits++
		}
	}
	for f, n := range mixCount {
		rep.Mix = append(rep.Mix, bench.LoadMixRow{Flavor: f, Count: n})
	}
	for k, n := range outcomeCount {
		rep.Outcomes = append(rep.Outcomes, bench.LoadOutcomeRow{Status: statusOf[k], Class: k[1], Count: n})
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Requests)
	}
	rep.ElapsedNS = elapsed.Nanoseconds()
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) int64 {
			idx := int(p * float64(len(lats)-1))
			return lats[idx].Nanoseconds()
		}
		rep.Latency = bench.LoadLatency{
			P50NS: pct(0.50),
			P95NS: pct(0.95),
			P99NS: pct(0.99),
			MaxNS: lats[len(lats)-1].Nanoseconds(),
		}
	}
	rep.Sort()
	return rep, nil
}
