package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpint/internal/codegen"
)

// TestGracefulDrain pins the shutdown contract end to end: with a job
// executing and another queued behind it, Drain lets the in-flight job
// finish with 200, sheds the queued job with 503, refuses new admissions
// with 503, flips /healthz to draining, and returns only when the pool is
// quiet. Run under -race this is also the drain's concurrency test.
func TestGracefulDrain(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	ts := newHTTPServer(t, s)

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testCompileOptions = func(opts *codegen.Options) {
		once.Do(func() { close(started) })
		<-release
	}

	// In-flight job: blocks inside the worker until released.
	inflight := make(chan result, 1)
	go func() { inflight <- postRaw(ts, "/v1/compile", `{"source": `+jsonStr(okSrc)+`}`) }()
	<-started

	// Queued job: sits in the single worker's queue when the drain starts.
	queued := make(chan result, 1)
	go func() { queued <- postRaw(ts, "/v1/compile", `{"source": `+jsonStr(okSrc+"// q")+`}`) }()
	waitFor(t, func() bool { return len(s.pool.shards[0]) == 1 })

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	waitFor(t, s.Draining)

	// New admissions are refused immediately, before the pool is even
	// quiet, and health reports draining.
	if r := postRaw(ts, "/v1/compile", `{"source": `+jsonStr(okSrc+"// new")+`}`); r.status != 503 || r.class != "unavailable" {
		t.Errorf("admission during drain: %d %q, want 503 unavailable", r.status, r.class)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Errorf("healthz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
		}
	}

	// The drain must be blocked on the in-flight job, not abandoning it.
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still executing")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the in-flight job finished")
	}

	if r := <-inflight; r.status != 200 || r.class != "none" {
		t.Errorf("in-flight job: %d %q, want 200 none (in-flight jobs drain, not die)", r.status, r.class)
	}
	if r := <-queued; r.status != 503 || r.class != "unavailable" {
		t.Errorf("queued job: %d %q, want 503 unavailable (queued jobs shed)", r.status, r.class)
	}

	// Drain is idempotent and the pool stays quiet.
	s.Drain()
}

// TestAbortCancelsInflight: a drain that ran out of grace force-cancels
// the in-flight run via its cooperative hook instead of waiting forever.
func TestAbortCancelsInflight(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := newHTTPServer(t, s)

	// A long simulate job (functional engine, ~8M steps) that the abort
	// must cut short. No test seam: the hook path is the production path.
	body := `{"source": ` + jsonStr(slowSrc) + `, "timing": "functional"}`
	done := make(chan result, 1)
	go func() { done <- postRaw(ts, "/v1/simulate", body) }()
	waitFor(t, func() bool { return s.stats.accepted.Load() == 1 })

	s.Abort()
	select {
	case r := <-done:
		if r.status != 422 || r.class != "input" {
			t.Errorf("aborted job: %d %q, want 422 input (cancelled trap)", r.status, r.class)
		}
		if !strings.Contains(r.errMsg, "cancelled") && !strings.Contains(r.errMsg, "shutting down") {
			t.Errorf("aborted job error %q does not mention cancellation", r.errMsg)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("abort did not cancel the in-flight job")
	}
	s.Drain()
}

// newHTTPServer wraps the server's handler in an httptest listener whose
// lifetime the test owns (drain timing is the subject here, so cleanup
// only closes the listener).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

type result struct {
	status int
	class  string
	errMsg string
}

// postRaw sends a job and extracts (status, class, error) without
// t.Fatal — drain tests post from goroutines.
func postRaw(ts *httptest.Server, path, body string) result {
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return result{status: -1, errMsg: err.Error()}
	}
	defer resp.Body.Close()
	var doc struct {
		Class string `json:"class"`
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	return result{status: resp.StatusCode, class: doc.Class, errMsg: doc.Error}
}
