package service

import (
	"time"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/fperr"
	"fpint/internal/obs"
	"fpint/internal/sim"
	"fpint/internal/trap"
	"fpint/internal/uarch"
)

// hookInterval is the cooperative-cancellation cadence in dynamic steps.
// Coarse enough to stay invisible in the engines' zero-allocation hot
// loops, fine enough that a deadline aborts within microseconds of real
// work.
const hookInterval = 4096

// execute runs one job to a terminal artifact. It never panics and never
// returns a Go error: every failure mode — including panics anywhere in
// the compile/simulate stack — becomes a classified response document, so
// one poisoned job cannot take the worker (let alone the process) down.
func (s *Server) execute(j *job, key string, ws *workerState) (art *Artifact) {
	defer func() {
		if r := recover(); r != nil {
			// The worker's warm machines were possibly abandoned mid-run;
			// rebuild rather than trust them.
			ws.reset()
			s.stats.panics.Add(1)
			err := fperr.New(fperr.ClassInternal, "job panicked: %v", r)
			art = &Artifact{Key: key, Class: fperr.ClassInternal, Resp: errorResponse(j.kind, key, err)}
		}
	}()

	if j.panicJob {
		if !s.opts.Chaos {
			err := fperr.New(fperr.ClassUsage, "panic jobs require the daemon to run in chaos mode")
			return &Artifact{Key: key, Class: fperr.ClassUsage, Resp: errorResponse(j.kind, key, err)}
		}
		panic("chaos: panic job requested")
	}

	hook := s.runHook(j)
	opts := codegen.Options{
		Scheme:   j.scheme,
		Analysis: j.analysis,
		Frontend: codegen.FrontendBudget{StepLimit: j.budget, RunHook: hook, HookEvery: hookInterval},
	}
	if j.kind == KindCompile {
		opts.PassLog = &obs.PassLog{}
	}
	if s.testCompileOptions != nil {
		s.testCompileOptions(&opts)
	}

	res, mod, err := codegen.CompileSourceWithFallback(j.src, opts)
	if err != nil {
		return &Artifact{Key: key, Class: fperr.ClassOf(err), Resp: errorResponse(j.kind, key, err)}
	}

	resp := &Response{Schema: ResponseSchema, Kind: j.kind, Key: key, Class: fperr.ClassNone.String()}
	if res.Fallback != nil {
		resp.Degraded = true
		resp.Class = fperr.ClassDegraded.String()
		resp.Error = res.DegradedError().Error()
	}

	switch j.kind {
	case KindCompile:
		resp.Compile = codegen.BuildCompileReport(j.schemeName, mod.Funcs, res, opts.PassLog)
	case KindPartition:
		pr := &PartitionReport{Scheme: j.schemeName, Fallback: res.Fallback, Funcs: make(map[string]*core.Audit)}
		for _, fn := range mod.Funcs {
			if p := res.Partitions[fn.Name]; p != nil {
				pr.Funcs[fn.Name] = p.Audit
			}
		}
		resp.Partition = pr
	case KindSimulate:
		sr, err := s.simulate(j, res, ws, hook)
		if err != nil {
			return &Artifact{Key: key, Class: fperr.ClassOf(err), Resp: errorResponse(j.kind, key, err)}
		}
		resp.Simulate = sr
	}

	class := fperr.ClassNone
	if resp.Degraded {
		class = fperr.ClassDegraded
	}
	return &Artifact{Key: key, Class: class, Degraded: resp.Degraded, Resp: resp}
}

// simulate runs the compiled program on the engine the job selected,
// returning the deterministic metric document. Engine traps (including
// blown budgets and expired deadlines) are input-class errors.
func (s *Server) simulate(j *job, res *codegen.Result, ws *workerState, hook func(int64) error) (*SimulateReport, error) {
	reg := obs.NewRegistry()
	var out *sim.Result
	var st uarch.Stats
	var sst uarch.SampledStats
	var err error
	timed := j.timing != timingFunctional

	if timed {
		m := ws.machine(j.cfg)
		m.SetStepLimit(j.budget)
		m.SetRunHook(hook, hookInterval)
		if j.timing == timingFast {
			out, sst, err = m.RunSampled(res.Prog, uarch.DefaultSampleConfig())
			st = sst.Stats
		} else {
			out, st, err = m.Run(res.Prog)
		}
		// Disarm before the machine goes back in the worker's warm set: the
		// hook closes over this job's deadline.
		m.SetRunHook(nil, 0)
		m.SetStepLimit(0)
	} else {
		m := sim.New(res.Prog)
		if j.budget > 0 {
			m.SetStepLimit(j.budget)
		}
		m.SetRunHook(hook, hookInterval)
		out, err = m.Run()
	}
	if err != nil {
		return nil, fperr.Wrap(fperr.ClassInput, err)
	}

	reg.Gauge(obs.MetricRunExit).Set(float64(out.Ret))
	out.Stats.AddTo(reg, obs.PrefixSim)
	if timed {
		st.AddTo(reg, obs.PrefixUarch)
	}
	if j.timing == timingFast {
		reg.Gauge(obs.PrefixUarch + obs.MetricFastWindows).Set(float64(sst.Windows))
		reg.Gauge(obs.PrefixUarch + obs.MetricFastMeasuredInstructions).Set(float64(sst.MeasuredInstructions))
		reg.Gauge(obs.PrefixUarch + obs.MetricFastMeasuredCycles).Set(float64(sst.MeasuredCycles))
		reg.Gauge(obs.PrefixUarch + obs.MetricFastSampledFraction).Set(sst.SampledFraction)
		exact := 0.0
		if sst.Exact {
			exact = 1
		}
		reg.Gauge(obs.PrefixUarch + obs.MetricFastExact).Set(exact)
	}
	return &SimulateReport{Exit: out.Ret, Output: out.Output, Metrics: metricsJSON(reg)}, nil
}

// runHook builds the job's cooperative cancellation check: it trips when
// the job deadline passes or the server force-aborts a drain that ran out
// of grace. A nil return means the job runs unhooked (no deadline, and
// force-abort still covered by the server default hook when configured).
func (s *Server) runHook(j *job) func(int64) error {
	deadline := time.Time{}
	if j.deadline > 0 {
		deadline = time.Now().Add(j.deadline)
	}
	return func(steps int64) error {
		if s.aborting.Load() {
			return trap.New(trap.KindCancelled, "service", "server shutting down after %d steps", steps)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return trap.New(trap.KindCancelled, "service", "job deadline exceeded after %d steps", steps)
		}
		return nil
	}
}
