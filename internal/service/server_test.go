package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpint/internal/codegen"
	"fpint/internal/core"
)

const okSrc = `
int acc;
int main() {
	for (int i = 1; i < 50; i++) acc = acc + i;
	return acc;
}
`

const trapSrc = `
int z;
int main() { return 7 / z; }
`

const slowSrc = `
int acc;
int main() {
	for (int i = 0; i < 2000000; i++) acc = acc + i;
	return acc;
}
`

// newTestServer builds a server + httptest listener; the cleanup drains
// the pool so no worker goroutines outlive the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// post sends one job and decodes the response body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, *Response, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var doc Response
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST %s: decode response: %v", path, err)
	}
	return resp.StatusCode, &doc, resp.Header
}

// TestJobStatuses drives every fperr class the HTTP surface can produce
// end to end and pins its status + class-name pair, including the
// degraded ladder arriving as 200.
func TestJobStatuses(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, Chaos: true})

	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantClass  string
	}{
		{"valid compile", "/v1/compile", `{"source": ` + jsonStr(okSrc) + `}`, 200, "none"},
		{"valid partition", "/v1/partition", `{"source": ` + jsonStr(okSrc) + `, "scheme": "basic"}`, 200, "none"},
		{"valid simulate functional", "/v1/simulate", `{"source": ` + jsonStr(okSrc) + `, "timing": "functional"}`, 200, "none"},
		{"valid simulate detailed 8way", "/v1/simulate", `{"source": ` + jsonStr(okSrc) + `, "config": "8way"}`, 200, "none"},
		{"malformed JSON", "/v1/compile", `{"source": "int main`, 400, "usage"},
		{"unknown scheme", "/v1/compile", `{"source": "int main() { return 0; }", "scheme": "warp"}`, 400, "usage"},
		{"unknown workload", "/v1/compile", `{"workload": "no-such-benchmark"}`, 400, "usage"},
		{"source and workload", "/v1/compile", `{"source": "x", "workload": "compress"}`, 400, "usage"},
		{"timing on compile", "/v1/compile", `{"source": "x", "timing": "fast"}`, 400, "usage"},
		{"trap program", "/v1/simulate", `{"source": ` + jsonStr(trapSrc) + `, "timing": "functional"}`, 422, "input"},
		{"over budget", "/v1/simulate", `{"source": ` + jsonStr(slowSrc) + `, "timing": "functional", "stepBudget": 1000}`, 422, "input"},
		{"deadline exceeded", "/v1/simulate", `{"source": ` + jsonStr(slowSrc) + `, "timing": "functional", "deadlineMs": 1}`, 422, "input"},
		{"panic job", "/v1/compile", `{"panic": true}`, 500, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, doc, _ := post(t, ts, tc.path, tc.body)
			if status != tc.wantStatus || doc.Class != tc.wantClass {
				t.Fatalf("%s: got status=%d class=%q (err=%q), want %d %q",
					tc.name, status, doc.Class, doc.Error, tc.wantStatus, tc.wantClass)
			}
			if tc.wantStatus == 200 && tc.wantClass == "none" {
				switch tc.path {
				case "/v1/compile":
					if doc.Compile == nil || doc.Compile.Funcs["main"] == nil {
						t.Error("compile response missing the compile report")
					}
				case "/v1/partition":
					if doc.Partition == nil || doc.Partition.Funcs["main"] == nil {
						t.Error("partition response missing the audit view")
					}
				case "/v1/simulate":
					if doc.Simulate == nil || len(doc.Simulate.Metrics) == 0 {
						t.Error("simulate response missing the metrics document")
					}
				}
			}
		})
	}

	// Degraded ladder over HTTP: force the advanced scheme to fail with
	// the same synthetic partitioner bug the codegen ladder tests use;
	// the response must be 200 with degraded=true, never an error status.
	t.Run("degraded compile", func(t *testing.T) {
		s2, ts2 := newTestServer(t, Options{Workers: 1})
		s2.testCompileOptions = func(opts *codegen.Options) {
			user := opts.PartitionHook
			opts.PartitionHook = func(fn string, part *core.Partition) {
				if user != nil {
					user(fn, part)
				}
				if part.Scheme == "advanced" {
					panic("synthetic partitioner bug")
				}
			}
		}
		// Decode loosely: codegen.Fallback marshals schemes by name and has
		// no unmarshaller.
		resp, err := http.Post(ts2.URL+"/v1/compile", "application/json", strings.NewReader(`{"source": `+jsonStr(okSrc)+`}`))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var doc struct {
			Class    string `json:"class"`
			Degraded bool   `json:"degraded"`
			Compile  struct {
				Fallback *struct {
					Requested string `json:"requested"`
					Used      string `json:"used"`
				} `json:"fallback"`
			} `json:"compile"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.StatusCode != 200 || doc.Class != "degraded" || !doc.Degraded {
			t.Fatalf("degraded compile: status=%d class=%q degraded=%v, want 200 degraded true", resp.StatusCode, doc.Class, doc.Degraded)
		}
		if doc.Compile.Fallback == nil || doc.Compile.Fallback.Used != "basic" || doc.Compile.Fallback.Requested != "advanced" {
			t.Errorf("degraded response fallback record = %+v, want advanced→basic", doc.Compile.Fallback)
		}
	})

	// The panic was recovered, counted, and the server kept serving.
	if got := s.stats.panics.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	if status, doc, _ := post(t, ts, "/v1/compile", `{"source": `+jsonStr(okSrc)+`}`); status != 200 {
		t.Errorf("server unhealthy after recovered panic: %d %q", status, doc.Error)
	}
}

// TestPanicRequiresChaos: without -chaos the fault-injection surface is a
// usage error, not an honored panic.
func TestPanicRequiresChaos(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	status, doc, _ := post(t, ts, "/v1/compile", `{"panic": true}`)
	if status != 400 || doc.Class != "usage" {
		t.Fatalf("panic without chaos: got %d %q, want 400 usage", status, doc.Class)
	}
}

// TestCacheServesRepeats: the second identical job is a cache hit carrying
// the same document.
func TestCacheServesRepeats(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	body := `{"source": ` + jsonStr(okSrc) + `, "timing": "functional"}`
	status1, doc1, _ := post(t, ts, "/v1/simulate", body)
	status2, doc2, _ := post(t, ts, "/v1/simulate", body)
	if status1 != 200 || status2 != 200 {
		t.Fatalf("statuses %d/%d, want 200/200", status1, status2)
	}
	if doc1.Cached || !doc2.Cached {
		t.Errorf("cached flags %v/%v, want false/true", doc1.Cached, doc2.Cached)
	}
	if doc1.Key == "" || doc1.Key != doc2.Key {
		t.Errorf("keys %q/%q, want equal and non-empty", doc1.Key, doc2.Key)
	}
	if doc1.Simulate.Exit != doc2.Simulate.Exit || !bytes.Equal(doc1.Simulate.Metrics, doc2.Simulate.Metrics) {
		t.Error("cached document differs from the computed one")
	}
	if hits := s.stats.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestSingleflightDedup: concurrent identical jobs execute once. Run with
// -race this also exercises the cache's flight bookkeeping under
// contention.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 64})
	var executions atomic.Int64
	s.testCompileOptions = func(opts *codegen.Options) { executions.Add(1) }

	const clients = 16
	body := `{"source": ` + jsonStr(okSrc) + `, "scheme": "basic"}`
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var doc Response
			json.NewDecoder(resp.Body).Decode(&doc)
			if resp.StatusCode != 200 || doc.Class != "none" {
				errs <- fmt.Sprintf("status=%d class=%q", resp.StatusCode, doc.Class)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent job failed: %s", e)
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("identical concurrent jobs compiled %d times, want 1 (singleflight + cache)", got)
	}
}

// TestLoadShedding: a one-worker pool whose only worker is wedged sheds
// overflow with 503 + Retry-After once the queue fills.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Chaos: true, RetryAfterSec: 7})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testCompileOptions = func(opts *codegen.Options) {
		once.Do(func() { close(started) })
		<-release
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	// Wedge the worker.
	wedged := make(chan *Response, 1)
	go func() {
		_, doc, _ := post(t, ts, "/v1/compile", `{"source": `+jsonStr(okSrc)+`}`)
		wedged <- doc
	}()
	<-started

	// Fill the single queue slot (different source → different key, but
	// one worker means one shard).
	queued := make(chan *Response, 1)
	go func() {
		_, doc, _ := post(t, ts, "/v1/compile", `{"source": `+jsonStr(okSrc+"// b")+`}`)
		queued <- doc
	}()
	waitFor(t, func() bool { return len(s.pool.shards[0]) == 1 })

	// The next distinct job must shed.
	status, doc, hdr := post(t, ts, "/v1/compile", `{"source": `+jsonStr(okSrc+"// c")+`}`)
	if status != 503 || doc.Class != "unavailable" {
		t.Fatalf("overflow job: got %d %q, want 503 unavailable", status, doc.Class)
	}
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	if s.stats.shed.Load() == 0 {
		t.Error("shed counter did not move")
	}

	close(release)
	if doc := <-wedged; doc.Class != "none" {
		t.Errorf("wedged job finished %q, want none", doc.Class)
	}
	if doc := <-queued; doc.Class != "none" {
		t.Errorf("queued job finished %q, want none", doc.Class)
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// jsonStr encodes s as a JSON string literal.
func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
