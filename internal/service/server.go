package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"fpint/internal/codegen"
	"fpint/internal/fperr"
)

// Options configures a Server. The zero value is usable; zero fields take
// the documented defaults.
type Options struct {
	// Workers is the number of pool shards (default 4). Each shard is one
	// worker goroutine with its own bounded queue and warm simulation
	// machines.
	Workers int
	// QueueDepth is the per-shard queue bound (default 16). A full shard
	// sheds with 503 rather than queueing unboundedly.
	QueueDepth int
	// CacheCap bounds the artifact cache entry count (default 1024).
	CacheCap int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Chaos enables the fault-injection surface: requests carrying
	// "panic": true are honored (and recovered). Off by default so a
	// production daemon cannot be panicked by request.
	Chaos bool
	// RetryAfterSec is the Retry-After hint on shed responses (default 1).
	RetryAfterSec int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 16
	}
	if out.CacheCap <= 0 {
		out.CacheCap = 1024
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 1 << 20
	}
	if out.RetryAfterSec <= 0 {
		out.RetryAfterSec = 1
	}
	return out
}

// Server is the fpintd daemon core: HTTP rim, admission control, cache,
// and worker pool. Create with New, serve Handler, stop with Drain.
type Server struct {
	opts     Options
	stats    *stats
	cache    *cache
	pool     *pool
	aborting atomic.Bool

	// testCompileOptions, when non-nil, may mutate each job's compile
	// options before execution. Test seam: the degraded-ladder e2e test
	// injects a failing PartitionHook through it, since no HTTP field can
	// (deliberately) make a partitioner fail on demand.
	testCompileOptions func(*codegen.Options)
}

// New builds a started server (workers running, accepting jobs).
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{opts: o, stats: newStats()}
	s.cache = newCache(o.CacheCap, s.stats)
	s.pool = newPool(o.Workers, o.QueueDepth)
	return s
}

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/compile    compile job → compile report
//	POST /v1/partition  compile job → partition audit trails
//	POST /v1/simulate   compile+simulate job → metrics document
//	GET  /healthz       liveness ("ok", or "draining" with 503)
//	GET  /statsz        operational counters (deterministic registry JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) { s.handleJob(w, r, KindCompile) })
	mux.HandleFunc("/v1/partition", func(w http.ResponseWriter, r *http.Request) { s.handleJob(w, r, KindPartition) })
	mux.HandleFunc("/v1/simulate", func(w http.ResponseWriter, r *http.Request) { s.handleJob(w, r, KindSimulate) })
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// Drain stops admission and waits for in-flight jobs to finish; queued
// jobs are shed with 503. Safe to call more than once. The HTTP listener
// belongs to the caller (cmd/fpintd closes it after Drain returns).
func (s *Server) Drain() {
	s.stats.draining.Store(true)
	s.pool.drain()
}

// Abort force-cancels in-flight jobs: every armed run hook trips with a
// cancelled trap at its next step boundary. For drains whose grace period
// ran out.
func (s *Server) Abort() { s.aborting.Store(true) }

// Draining reports whether the drain has started.
func (s *Server) Draining() bool { return s.stats.draining.Load() }

// handleJob is the one job endpoint implementation; kind tells it which
// document to produce.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, kind string) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, kind, "", fperr.New(fperr.ClassUsage, "method %s not allowed; POST a job", r.Method))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		s.writeError(w, kind, "", fperr.New(fperr.ClassUsage, "read body: %v", err))
		return
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		s.writeError(w, kind, "", fperr.New(fperr.ClassUsage, "request body exceeds %d bytes", s.opts.MaxBodyBytes))
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, kind, "", fperr.New(fperr.ClassUsage, "malformed job JSON: %v", err))
		return
	}
	j, err := parseRequest(kind, &req)
	if err != nil {
		s.writeError(w, kind, "", err)
		return
	}
	key := j.cacheKey()

	if s.Draining() {
		s.shed(w, kind, key)
		return
	}
	s.stats.accepted.Add(1)

	compute := func() (*Artifact, error) {
		t := &task{done: make(chan struct{}), run: func(ws *workerState) *Artifact {
			return s.execute(j, key, ws)
		}}
		if err := s.pool.submit(key, t); err != nil {
			return nil, err
		}
		<-t.done
		if t.shed {
			return nil, errShed
		}
		s.stats.completed.Add(1)
		return t.art, nil
	}
	art, cached, err := s.cache.do(key, j.shareable(), compute)
	if err != nil {
		s.shed(w, kind, key)
		return
	}
	// Serve a copy: the stored payload stays sealed with Cached=false.
	resp := *art.Resp
	resp.Cached = cached
	s.writeResponse(w, art.Class.HTTPStatus(), &resp, art.Class)
}

// shed refuses a job with 503 + Retry-After.
func (s *Server) shed(w http.ResponseWriter, kind, key string) {
	s.stats.shed.Add(1)
	w.Header().Set("Retry-After", fmt.Sprintf("%d", s.opts.RetryAfterSec))
	resp := errorResponse(kind, key, errShed)
	s.writeResponse(w, fperr.ClassUnavailable.HTTPStatus(), resp, fperr.ClassUnavailable)
}

// writeError classifies and writes a pre-execution failure.
func (s *Server) writeError(w http.ResponseWriter, kind, key string, err error) {
	class := fperr.ClassOf(err)
	if class == fperr.ClassNone {
		class = fperr.ClassInternal
	}
	s.writeResponse(w, class.HTTPStatus(), errorResponse(kind, key, err), class)
}

// writeResponse emits the terminal response and records its outcome.
func (s *Server) writeResponse(w http.ResponseWriter, status int, resp *Response, class fperr.Class) {
	s.stats.outcome(class)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp) // a write error here means the client went away
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.stats.writeJSON(w)
}
