// Package service implements fpintd: a fault-isolated HTTP/JSON daemon
// that accepts compile, partition, and simulate jobs over a sharded
// bounded worker pool, with a content-addressed artifact cache in front.
//
// Robustness contract:
//
//   - Every job executes behind a recover barrier; a panic anywhere in the
//     compile/simulate stack becomes a classified internal error (HTTP
//     500) and a service.panics_recovered increment, never a process
//     death.
//   - fperr classes map to HTTP statuses via fperr.Class.HTTPStatus, a
//     complete table pinned by unit test. Degraded compiles return 200
//     with "degraded": true — the degradation ladder produced a correct
//     program.
//   - Per-job deadlines and step budgets ride the engines' cooperative
//     run hooks (sim/interp/uarch SetRunHook), aborting runs at step
//     boundaries with a structured cancelled/step-limit trap → 422.
//   - Admission is bounded: a full shard queue or a draining process
//     sheds with 503 + Retry-After instead of queueing unboundedly.
//   - SIGTERM drains gracefully: in-flight jobs finish, queued jobs are
//     shed with 503, then the listener closes.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"time"

	"fpint/internal/bench"
	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/fperr"
	"fpint/internal/obs"
	"fpint/internal/uarch"
)

// Job kinds, one per POST endpoint.
const (
	KindCompile   = "compile"
	KindPartition = "partition"
	KindSimulate  = "simulate"
)

// Request is the JSON body accepted by every job endpoint. Exactly one of
// Source and Workload names the program.
type Request struct {
	// Source is mini-C program text.
	Source string `json:"source,omitempty"`
	// Workload names a built-in benchmark (bench.Lookup) instead.
	Workload string `json:"workload,omitempty"`
	// Scheme is the partitioning scheme: none, basic, advanced (default),
	// or balanced.
	Scheme string `json:"scheme,omitempty"`
	// Config is the machine configuration for simulate jobs: 4way
	// (default) or 8way.
	Config string `json:"config,omitempty"`
	// Analysis turns the alias/value-range analyses on or off (default).
	Analysis string `json:"analysis,omitempty"`
	// Timing selects the simulate engine: detailed (default), fast
	// (sampled timing), or functional (no timing model).
	Timing string `json:"timing,omitempty"`
	// DeadlineMS bounds the job's wall-clock time; the engines' run hooks
	// abort the run with a cancelled trap (422) when it expires. 0 means
	// the server default.
	DeadlineMS int64 `json:"deadlineMs,omitempty"`
	// StepBudget bounds dynamic steps per execution stage (the frontend
	// self-profile run and the simulation each get the budget). Exceeding
	// it is a step-limit trap (422). 0 means the engine defaults.
	StepBudget int64 `json:"stepBudget,omitempty"`
	// Panic asks the worker to panic mid-job. Only honored when the
	// daemon runs with chaos mode enabled (fpintd -chaos); otherwise it
	// is a usage error. The load harness uses it to prove the recover
	// barrier holds.
	Panic bool `json:"panic,omitempty"`
}

// ResponseSchema identifies the job-response JSON layout.
const ResponseSchema = "fpint-job/v1"

// Response is the JSON body of every job endpoint, success or failure.
type Response struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	// Key is the content-addressed cache key of the job (hex SHA-256);
	// empty for requests rejected before key computation.
	Key string `json:"key,omitempty"`
	// Cached reports that the response was served from the artifact cache
	// (or deduplicated onto a concurrent identical job).
	Cached bool `json:"cached"`
	// Class is the fperr class name ("none" on clean success); Error
	// carries the message for non-none classes other than degraded.
	Class string `json:"class"`
	Error string `json:"error,omitempty"`
	// Degraded reports that compilation fell down the degradation ladder;
	// the program is correct and the HTTP status is 200.
	Degraded bool `json:"degraded"`

	// Compile is the shared compile-report document (compile jobs).
	Compile *codegen.CompileReport `json:"compile,omitempty"`
	// Partition is the audit-trail view (partition jobs).
	Partition *PartitionReport `json:"partition,omitempty"`
	// Simulate carries a simulate job's outputs.
	Simulate *SimulateReport `json:"simulate,omitempty"`
}

// PartitionReport is the partition endpoint's document: the per-function
// audit trails without the code-size and pass-log detail of the full
// compile report.
type PartitionReport struct {
	Scheme   string                 `json:"scheme"`
	Fallback *codegen.Fallback      `json:"fallback,omitempty"`
	Funcs    map[string]*core.Audit `json:"funcs"`
}

// SimulateReport is the simulate endpoint's document: the program's exit
// value and output plus the deterministic metric registry (sim.* always;
// uarch.* when a timing model ran) as rendered by obs.Registry.WriteJSON.
type SimulateReport struct {
	Exit    int64           `json:"exit"`
	Output  string          `json:"output,omitempty"`
	Metrics json.RawMessage `json:"metrics"`
}

// timingMode is the resolved Timing field.
type timingMode int

const (
	timingDetailed timingMode = iota
	timingFast
	timingFunctional
)

func (t timingMode) String() string {
	switch t {
	case timingFast:
		return "fast"
	case timingFunctional:
		return "functional"
	}
	return "detailed"
}

// job is a validated, resolved request.
type job struct {
	kind       string
	src        string
	scheme     codegen.Scheme
	schemeName string
	cfg        uarch.Config
	analysis   bool
	timing     timingMode
	deadline   time.Duration // 0 = none
	budget     int64         // 0 = engine defaults
	panicJob   bool
}

// parseRequest validates a request against the kind's vocabulary. All
// failures are usage-class (HTTP 400): the request itself is wrong, not
// the program in it.
func parseRequest(kind string, req *Request) (*job, error) {
	j := &job{kind: kind}

	switch {
	case req.Source != "" && req.Workload != "":
		return nil, fperr.New(fperr.ClassUsage, "source and workload are mutually exclusive")
	case req.Source != "":
		j.src = req.Source
	case req.Workload != "":
		w := bench.Lookup(req.Workload)
		if w == nil {
			return nil, fperr.New(fperr.ClassUsage, "unknown workload %q", req.Workload)
		}
		j.src = w.Src
	case req.Panic:
		// A chaos job needs no program.
	default:
		return nil, fperr.New(fperr.ClassUsage, "one of source or workload is required")
	}

	j.schemeName = req.Scheme
	if j.schemeName == "" {
		j.schemeName = "advanced"
	}
	switch j.schemeName {
	case "none":
		j.scheme = codegen.SchemeNone
	case "basic":
		j.scheme = codegen.SchemeBasic
	case "advanced":
		j.scheme = codegen.SchemeAdvanced
	case "balanced":
		j.scheme = codegen.SchemeBalanced
	default:
		return nil, fperr.New(fperr.ClassUsage, "unknown scheme %q", j.schemeName)
	}

	switch req.Config {
	case "", "4way":
		j.cfg = uarch.Config4Way()
	case "8way":
		j.cfg = uarch.Config8Way()
	default:
		return nil, fperr.New(fperr.ClassUsage, "unknown config %q (want 4way or 8way)", req.Config)
	}

	switch req.Analysis {
	case "", "off":
	case "on":
		j.analysis = true
	default:
		return nil, fperr.New(fperr.ClassUsage, "unknown analysis mode %q (want on or off)", req.Analysis)
	}

	switch req.Timing {
	case "", "detailed":
		j.timing = timingDetailed
	case "fast":
		j.timing = timingFast
	case "functional":
		j.timing = timingFunctional
	default:
		return nil, fperr.New(fperr.ClassUsage, "unknown timing mode %q (want detailed, fast, or functional)", req.Timing)
	}
	if kind != KindSimulate && req.Timing != "" {
		return nil, fperr.New(fperr.ClassUsage, "timing applies only to simulate jobs")
	}

	if req.DeadlineMS < 0 {
		return nil, fperr.New(fperr.ClassUsage, "negative deadlineMs")
	}
	j.deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	if req.StepBudget < 0 {
		return nil, fperr.New(fperr.ClassUsage, "negative stepBudget")
	}
	j.budget = req.StepBudget
	j.panicJob = req.Panic
	return j, nil
}

// cacheKey is the job's content address: the SHA-256 of every input that
// determines the artifact — kind, source text, scheme, machine config,
// analysis mode, timing mode, and step budget. Fields are length-prefixed
// so no two field sequences collide by concatenation. The deadline is
// deliberately excluded: it is wall-clock policy, not content, and two
// requests for the same artifact under different deadlines must share one
// cache entry. Chaos jobs are never cached, so Panic needs no key bit.
func (j *job) cacheKey() string {
	h := sha256.New()
	field := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	field("fpint-job/v1")
	field(j.kind)
	field(j.src)
	field(j.schemeName)
	field(j.cfg.Name)
	if j.analysis {
		field("analysis=on")
	} else {
		field("analysis=off")
	}
	field(j.timing.String())
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(j.budget))
	h.Write(b[:])
	return hex.EncodeToString(h.Sum(nil))
}

// shareable reports whether the job may join a concurrent identical
// computation (singleflight). Deadline-carrying jobs compute alone — a
// follower must not inherit the leader's (possibly tighter) deadline and
// its cancelled trap — and chaos jobs are not real work.
func (j *job) shareable() bool { return j.deadline == 0 && !j.panicJob }

// errorResponse builds the response document for a classified failure.
func errorResponse(kind, key string, err error) *Response {
	return &Response{
		Schema: ResponseSchema,
		Kind:   kind,
		Key:    key,
		Class:  fperr.ClassOf(err).String(),
		Error:  err.Error(),
	}
}

// metricsJSON renders a registry to its deterministic JSON document.
func metricsJSON(reg *obs.Registry) json.RawMessage {
	var buf jsonBuffer
	if err := reg.WriteJSON(&buf); err != nil {
		return json.RawMessage(`{}`)
	}
	return json.RawMessage(buf.data)
}

// jsonBuffer is a minimal io.Writer; bytes.Buffer would also do, but this
// keeps the RawMessage backing array unaliased.
type jsonBuffer struct{ data []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
