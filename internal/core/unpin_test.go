package core_test

import (
	"strings"
	"testing"

	"fpint/internal/core"
)

// allOracle unpins every address with a fixed justification.
type allOracle struct{}

func (allOracle) SafeAddr(int) (string, bool) { return "test oracle: in bounds", true }

// noneOracle refuses every address (equivalent to passing no oracle).
type noneOracle struct{}

func (noneOracle) SafeAddr(int) (string, bool) { return "", false }

// TestOracleUnpinsAddressNodes: with a permissive oracle every load/store
// address node is built flexible and carries a justification; without one
// every address node stays pinned and the unpin table stays empty.
func TestOracleUnpinsAddressNodes(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")

	g := core.BuildGraphWithOracle(fn, prof, allOracle{})
	addrNodes := 0
	for _, n := range g.Nodes {
		if n.Kind != core.KindLoadAddr && n.Kind != core.KindStoreAddr {
			continue
		}
		addrNodes++
		if n.Class != core.ClassFlex {
			t.Errorf("n%d (%s): class %v, want flexible", n.ID, n.Kind, n.Class)
		}
		if g.Unpinned[n.ID] == "" {
			t.Errorf("n%d (%s): unpinned without justification", n.ID, n.Kind)
		}
	}
	if addrNodes == 0 {
		t.Fatal("fragment has no address nodes")
	}

	for _, pinned := range []*core.Graph{
		core.BuildGraphWithOracle(fn, prof, noneOracle{}),
		core.BuildGraph(fn, prof),
	} {
		if len(pinned.Unpinned) != 0 {
			t.Errorf("unpin table not empty without oracle: %v", pinned.Unpinned)
		}
		for _, n := range pinned.Nodes {
			if (n.Kind == core.KindLoadAddr || n.Kind == core.KindStoreAddr) && n.Class != core.ClassPinInt {
				t.Errorf("n%d (%s): address node not pinned", n.ID, n.Kind)
			}
		}
	}
}

// TestUnpinsAuditedAndVerified: unpinned partitions pass the verifier under
// both schemes and surface every unpin in the audit trail.
func TestUnpinsAuditedAndVerified(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	g := core.BuildGraphWithOracle(fn, prof, allOracle{})

	for name, p := range map[string]*core.Partition{
		"basic":    core.BasicPartition(g),
		"advanced": core.AdvancedPartition(g, core.CostParams{}),
	} {
		if err := core.VerifyPartition(p); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Audit == nil || len(p.Audit.Unpins) != len(g.Unpinned) {
			t.Fatalf("%s: audit records %d unpins, graph has %d",
				name, len(p.Audit.Unpins), len(g.Unpinned))
		}
		if !strings.Contains(p.Audit.String(), "unpin n") {
			t.Errorf("%s: audit text lacks unpin lines", name)
		}
	}
}

// TestVerifierRejectsUnjustifiedUnpin: an address node offloaded to FPa
// without an oracle justification must fail verification, as must hygiene
// violations in the unpin table itself.
func TestVerifierRejectsUnjustifiedUnpin(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")

	tamper := []struct {
		name string
		mut  func(g *core.Graph, p *core.Partition) bool
		want string
	}{
		{"unjustified-fpa-addr", func(g *core.Graph, p *core.Partition) bool {
			for _, n := range g.Nodes {
				if n.Kind == core.KindLoadAddr && p.Assign[n.ID] == core.SubFPa {
					delete(g.Unpinned, n.ID)
					return true
				}
			}
			return false
		}, "without an unpin justification"},
		{"empty-reason", func(g *core.Graph, p *core.Partition) bool {
			for id := range g.Unpinned {
				g.Unpinned[id] = ""
				return true
			}
			return false
		}, "unpin"},
		{"non-address-unpin", func(g *core.Graph, p *core.Partition) bool {
			for _, n := range g.Nodes {
				if n.Kind == core.KindPlain {
					g.Unpinned[n.ID] = "bogus"
					return true
				}
			}
			return false
		}, "unpin"},
	}
	for _, tc := range tamper {
		g := core.BuildGraphWithOracle(fn, prof, allOracle{})
		p := core.BasicPartition(g)
		if err := core.VerifyPartition(p); err != nil {
			t.Fatalf("%s: clean partition rejected: %v", tc.name, err)
		}
		if !tc.mut(g, p) {
			t.Fatalf("%s: tamper found no target", tc.name)
		}
		err := core.VerifyPartition(p)
		if err == nil {
			t.Errorf("%s: tampered partition accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q lacks %q", tc.name, err, tc.want)
		}
	}
}
