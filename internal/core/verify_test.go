package core_test

import (
	"strings"
	"testing"

	"fpint/internal/core"
)

// partitionAll builds every function's RDG and advanced partition.
func partitionAll(t *testing.T, src string) map[string]*core.Partition {
	t.Helper()
	mod, prof := build(t, src)
	parts := make(map[string]*core.Partition)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		parts[fn.Name] = core.AdvancedPartition(g, core.CostParams{})
	}
	return parts
}

func TestVerifyAcceptsSoundPartitions(t *testing.T) {
	mod, prof := build(t, gccFragment)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		for name, p := range map[string]*core.Partition{
			"basic":    core.BasicPartition(g),
			"advanced": core.AdvancedPartition(g, core.CostParams{}),
			"balanced": core.BalancedPartition(g, core.CostParams{}, 0.5),
		} {
			if err := core.VerifyPartition(p); err != nil {
				t.Errorf("%s/%s: sound partition rejected: %v", fn.Name, name, err)
			}
		}
	}
	if err := core.VerifyPartition(nil); err != nil {
		t.Errorf("nil (conventional) partition rejected: %v", err)
	}
}

func TestVerifyCatchesPinnedNodeInFPa(t *testing.T) {
	for _, p := range partitionAll(t, gccFragment) {
		var pinned *core.Node
		for _, n := range p.G.Nodes {
			if n.Class == core.ClassPinInt {
				pinned = n
				break
			}
		}
		if pinned == nil {
			continue
		}
		p.Assign[pinned.ID] = core.SubFPa
		err := core.VerifyPartition(p)
		if err == nil {
			t.Fatalf("pinned node n%d (%s) in FPa not caught", pinned.ID, pinned.Kind)
		}
		if !strings.Contains(err.Error(), "FPa") {
			t.Fatalf("unhelpful verifier message: %v", err)
		}
		return
	}
	t.Fatal("no pinned node found in any function")
}

func TestVerifyCatchesMissingCopy(t *testing.T) {
	// Strip a copy/dup from an INT→FPa boundary: the cross-partition edge
	// is then uncarried and must be flagged.
	for _, p := range partitionAll(t, gccFragment) {
		for id := range p.CopyNodes {
			delete(p.CopyNodes, id)
			if err := core.VerifyPartition(p); err == nil {
				t.Fatal("removed INT→FPa copy not caught")
			}
			return
		}
		for id := range p.DupNodes {
			delete(p.DupNodes, id)
			if err := core.VerifyPartition(p); err == nil {
				t.Fatal("removed duplicate not caught")
			}
			return
		}
	}
	t.Skip("advanced partition produced no copies or duplicates on this input")
}

func TestVerifyCatchesFlippedFlexNode(t *testing.T) {
	// Flip a single flex node across the boundary without adjusting any
	// transfer: some incident edge must become uncarried. This is exactly
	// the InjectFlip fault the differential fuzzer plants.
	for _, p := range partitionAll(t, gccFragment) {
		for _, n := range p.G.Nodes {
			if n.Class != core.ClassFlex || len(n.Parents)+len(n.Children) == 0 {
				continue
			}
			if p.CopyNodes[n.ID] || p.DupNodes[n.ID] || p.OutCopyNodes[n.ID] {
				continue
			}
			if p.Assign[n.ID] == core.SubINT {
				p.Assign[n.ID] = core.SubFPa
			} else {
				p.Assign[n.ID] = core.SubINT
			}
			// Not every single flip breaks an invariant (an isolated node
			// can move freely), but a connected one with unprepared
			// neighbors must trip the copy discipline.
			hasCross := false
			for _, par := range n.Parents {
				if p.G.Nodes[par].Class != core.ClassFixedFP &&
					p.Assign[par] != p.Assign[n.ID] && !p.FPaAvailable(par) && !p.OutCopyNodes[par] {
					hasCross = true
				}
			}
			for _, c := range n.Children {
				if p.G.Nodes[c].Class != core.ClassFixedFP && p.Assign[c] != p.Assign[n.ID] {
					hasCross = true
				}
			}
			if !hasCross {
				// Undo and keep looking for a flip that matters.
				if p.Assign[n.ID] == core.SubINT {
					p.Assign[n.ID] = core.SubFPa
				} else {
					p.Assign[n.ID] = core.SubINT
				}
				continue
			}
			if err := core.VerifyPartition(p); err == nil {
				t.Fatalf("flipped flex node n%d not caught", n.ID)
			}
			return
		}
	}
	t.Fatal("no flippable flex node found")
}

func TestVerifyCatchesOutCopyAtNonActualArg(t *testing.T) {
	for _, p := range partitionAll(t, gccFragment) {
		for _, n := range p.G.Nodes {
			if n.Class != core.ClassFlex || p.Assign[n.ID] != core.SubFPa || n.IsActualArg {
				continue
			}
			p.OutCopyNodes[n.ID] = true
			if err := core.VerifyPartition(p); err == nil {
				t.Fatal("out-copy at non-actual-parameter node not caught")
			}
			return
		}
	}
	t.Skip("no FPa-resident non-actual-arg node on this input")
}

func TestVerifyCatchesBasicSchemeTransfers(t *testing.T) {
	mod, prof := build(t, gccFragment)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		p := core.BasicPartition(g)
		for _, n := range g.Nodes {
			if n.Class == core.ClassFlex && p.Assign[n.ID] == core.SubINT {
				p.CopyNodes[n.ID] = true
				if err := core.VerifyPartition(p); err == nil {
					t.Fatal("copy under the basic scheme not caught")
				}
				return
			}
		}
	}
	t.Fatal("no INT-side flex node found")
}

func TestViolationsDeterministic(t *testing.T) {
	mut := func() *core.Partition {
		p := partitionAll(t, gccFragment)["invalidate_for_call"]
		for _, n := range p.G.Nodes {
			if n.Class == core.ClassPinInt {
				p.Assign[n.ID] = core.SubFPa // every pinned node: many violations
			}
		}
		return p
	}
	a, b := mut().Violations(), mut().Violations()
	if len(a) == 0 {
		t.Fatal("expected violations")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("violation lists differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}
