package core

// Computational slices (§3). Because load/store nodes are split and the two
// halves share no edge, backward slices stop at load-value nodes and forward
// slices stop at address nodes, exactly as the paper defines.

// BackwardSlice returns the set of nodes from which any node in roots can be
// reached (including the roots themselves).
func (g *Graph) BackwardSlice(roots ...NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	stack := append([]NodeID(nil), roots...)
	for _, r := range roots {
		out[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Nodes[n].Parents {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// ForwardSlice returns the set of nodes reachable from any node in roots
// (including the roots themselves).
func (g *Graph) ForwardSlice(roots ...NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	stack := append([]NodeID(nil), roots...)
	for _, r := range roots {
		out[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Nodes[n].Children {
			if !out[c] {
				out[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}

// LdStSlice returns the LdSt slice: the union of the backward slices of all
// load/store address nodes (§3). The paper observes this is close to 50% of
// dynamic instructions for integer codes.
func (g *Graph) LdStSlice() map[NodeID]bool {
	var roots []NodeID
	for _, n := range g.Nodes {
		if n.Kind == KindLoadAddr || n.Kind == KindStoreAddr {
			roots = append(roots, n.ID)
		}
	}
	return g.BackwardSlice(roots...)
}

// BranchSlice returns the backward slice of branch node br.
func (g *Graph) BranchSlice(br NodeID) map[NodeID]bool { return g.BackwardSlice(br) }

// StoreValueSlice returns the union of backward slices of all store value
// nodes.
func (g *Graph) StoreValueSlice() map[NodeID]bool {
	var roots []NodeID
	for _, n := range g.Nodes {
		if n.Kind == KindStoreVal && n.Class != ClassFixedFP {
			roots = append(roots, n.ID)
		}
	}
	return g.BackwardSlice(roots...)
}

// CallArgSlice returns the union of backward slices of all call nodes
// (their integer argument inputs).
func (g *Graph) CallArgSlice() map[NodeID]bool {
	var roots []NodeID
	for _, n := range g.Nodes {
		if n.Kind == KindCall {
			roots = append(roots, n.ID)
		}
	}
	return g.BackwardSlice(roots...)
}

// ReturnValueSlice returns the union of backward slices of return nodes.
func (g *Graph) ReturnValueSlice() map[NodeID]bool {
	var roots []NodeID
	for _, n := range g.Nodes {
		if n.Kind == KindRet && n.Class != ClassFixedFP {
			roots = append(roots, n.ID)
		}
	}
	return g.BackwardSlice(roots...)
}

// SliceStats summarizes the dynamic weight of the computational slices,
// using the graph's execution-count estimates.
type SliceStats struct {
	TotalWeight    float64 // Σ count over all non-FixedFP nodes (split nodes count once)
	LdStWeight     float64 // dynamic weight of the LdSt slice
	BranchWeight   float64 // dynamic weight of the union of branch slices
	StoreValWeight float64 // dynamic weight of the union of store-value slices
}

// ComputeSliceStats measures slice weights. Split load/store instructions
// contribute their count once (per dynamic instruction, not per node).
func (g *Graph) ComputeSliceStats() SliceStats {
	var st SliceStats
	// Weight per *instruction*: attribute a split instruction to the LdSt
	// slice (its address half always belongs there).
	inLdSt := g.LdStSlice()
	var brRoots []NodeID
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			brRoots = append(brRoots, n.ID)
		}
	}
	inBr := g.BackwardSlice(brRoots...)
	inSV := g.StoreValueSlice()

	counted := make(map[int]bool) // instruction IDs already counted
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP || n.Instr == nil {
			continue
		}
		if counted[n.Instr.ID] {
			continue
		}
		counted[n.Instr.ID] = true
		st.TotalWeight += n.Count
	}
	countedSlice := func(in map[NodeID]bool) float64 {
		seen := make(map[int]bool)
		var w float64
		for id := range in {
			n := g.Nodes[id]
			if n.Instr == nil || n.Class == ClassFixedFP || seen[n.Instr.ID] {
				continue
			}
			seen[n.Instr.ID] = true
			w += n.Count
		}
		return w
	}
	st.LdStWeight = countedSlice(inLdSt)
	st.BranchWeight = countedSlice(inBr)
	st.StoreValWeight = countedSlice(inSV)
	return st
}
