package core

import "fmt"

// Subsystem identifies where a node executes after partitioning.
type Subsystem uint8

// Subsystems.
const (
	SubINT Subsystem = iota // the integer subsystem
	SubFPa                  // the augmented floating-point subsystem
)

// String names the subsystem.
func (s Subsystem) String() string {
	if s == SubFPa {
		return "FPa"
	}
	return "INT"
}

// Partition is the result of running a partitioning scheme on a function's
// RDG.
type Partition struct {
	G      *Graph
	Scheme string

	// Assign[node] is the subsystem of each non-FixedFP node.
	Assign []Subsystem

	// CopyNodes are INT-side definitions whose value is copied INT→FPa
	// with an explicit copy instruction (advanced scheme only).
	CopyNodes map[NodeID]bool

	// DupNodes are INT-side definitions duplicated into FPa (advanced
	// scheme only). A duplicated load value is re-loaded into an FP
	// register; a duplicated ALU op is re-executed on FPa copies of its
	// operands.
	DupNodes map[NodeID]bool

	// OutCopyNodes are FPa-side definitions whose value is copied FPa→INT
	// because a call argument or return value needs it in an integer
	// register (§6.4).
	OutCopyNodes map[NodeID]bool

	// Audit is the partition-decision trail: one record per connected
	// component the scheme examined, with the cost-model terms and the
	// accept/reject reason (surfaced by fpic -explain).
	Audit *Audit
}

func newPartition(g *Graph, scheme string) *Partition {
	return &Partition{
		G:            g,
		Scheme:       scheme,
		Assign:       make([]Subsystem, len(g.Nodes)),
		CopyNodes:    make(map[NodeID]bool),
		DupNodes:     make(map[NodeID]bool),
		OutCopyNodes: make(map[NodeID]bool),
	}
}

// InFPa reports whether node id is assigned to the FPa subsystem.
func (p *Partition) InFPa(id NodeID) bool {
	return p.G.Nodes[id].Class != ClassFixedFP && p.Assign[id] == SubFPa
}

// FPaAvailable reports whether node id's value is available in the FP
// register file (it executes there, or is copied/duplicated into it).
func (p *Partition) FPaAvailable(id NodeID) bool {
	return p.InFPa(id) || p.CopyNodes[id] || p.DupNodes[id]
}

// Validate checks the structural invariants of the partition:
//   - pinned-INT nodes are in INT; FixedFP nodes have no assignment demands;
//   - every edge into an FPa node comes from an FPa-available value;
//   - every edge into an INT node comes from an INT value, or from an FPa
//     value with an FPa→INT out-copy (allowed only into call/ret nodes);
//   - copies/dups only attach to INT-side definitions, out-copies only to
//     FPa-side definitions.
func (p *Partition) Validate() error {
	g := p.G
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		if n.Class == ClassPinInt && p.Assign[n.ID] != SubINT {
			return fmt.Errorf("%s: node n%d (%s) pinned to INT but assigned FPa", g.Fn.Name, n.ID, n.Kind)
		}
		if p.CopyNodes[n.ID] && p.Assign[n.ID] != SubINT {
			return fmt.Errorf("%s: copy attached to non-INT node n%d", g.Fn.Name, n.ID)
		}
		if p.DupNodes[n.ID] && p.Assign[n.ID] != SubINT {
			return fmt.Errorf("%s: dup attached to non-INT node n%d", g.Fn.Name, n.ID)
		}
		if p.OutCopyNodes[n.ID] && p.Assign[n.ID] != SubFPa {
			return fmt.Errorf("%s: out-copy attached to non-FPa node n%d", g.Fn.Name, n.ID)
		}
		for _, c := range n.Children {
			child := g.Nodes[c]
			if child.Class == ClassFixedFP {
				continue
			}
			if p.Assign[c] == SubFPa {
				if !p.FPaAvailable(n.ID) {
					return fmt.Errorf("%s: FPa node n%d (%s) consumes n%d (%s) which is not FPa-available",
						g.Fn.Name, c, child.Kind, n.ID, n.Kind)
				}
			} else {
				if p.Assign[n.ID] == SubFPa {
					if !p.OutCopyNodes[n.ID] {
						return fmt.Errorf("%s: INT node n%d (%s) consumes FPa n%d (%s) without out-copy",
							g.Fn.Name, c, child.Kind, n.ID, n.Kind)
					}
					if child.Kind != KindCall && child.Kind != KindRet {
						return fmt.Errorf("%s: out-copy feeds non-call/ret node n%d (%s)",
							g.Fn.Name, c, child.Kind)
					}
				}
			}
		}
		// A duplicated node's parents must themselves be FPa-available,
		// because the duplicate re-executes in FPa. Load values are exempt:
		// their duplicate re-loads from memory using the INT-side address.
		if p.DupNodes[n.ID] && n.Kind != KindLoadVal {
			for _, par := range n.Parents {
				if g.Nodes[par].Class == ClassFixedFP {
					continue
				}
				if !p.FPaAvailable(par) {
					return fmt.Errorf("%s: duplicated node n%d has parent n%d not FPa-available",
						g.Fn.Name, n.ID, par)
				}
			}
		}
	}
	return nil
}

// Stats summarizes a partition statically, weighting nodes by the cost
// model's execution-count estimates. Dynamic percentages for the figures
// come from the timing/functional simulators instead.
type Stats struct {
	TotalNodes int
	FPaNodes   int
	Copies     int
	Dups       int
	OutCopies  int

	// Weighted by execution-count estimate, counting each split
	// instruction once (a load/store whose value half is in FPa still
	// executes in INT's load/store unit, so split instructions count as
	// INT).
	TotalWeight float64
	FPaWeight   float64
}

// ComputeStats derives summary statistics for the partition.
func (p *Partition) ComputeStats() Stats {
	var st Stats
	seen := make(map[int]bool)
	for _, n := range p.G.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		st.TotalNodes++
		if p.InFPa(n.ID) {
			st.FPaNodes++
		}
		if n.Instr == nil || seen[n.Instr.ID] {
			continue
		}
		seen[n.Instr.ID] = true
		st.TotalWeight += n.Count
		// Whole-instruction FPa execution requires the main node in FPa;
		// split memory instructions execute in INT regardless.
		switch n.Kind {
		case KindPlain, KindBranch:
			if p.InFPa(n.ID) {
				st.FPaWeight += n.Count
			}
		}
	}
	st.Copies = len(p.CopyNodes)
	st.Dups = len(p.DupNodes)
	st.OutCopies = len(p.OutCopyNodes)
	return st
}
