package core

import (
	"fmt"
	"strings"
)

// DotGraph renders the RDG (and, when p is non-nil, its partition) as a
// Graphviz digraph: INT nodes are boxes, FPa nodes are filled ellipses,
// fixed-FP nodes are dashed, and copy/duplicate transfer sites are marked.
// Useful with `fpic -dot` to look at partitions the way the paper's
// Figures 4–6 draw them.
func DotGraph(g *Graph, p *Partition) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", "rdg_"+g.Fn.Name)
	sb.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")
	for _, n := range g.Nodes {
		label := "param " + fmt.Sprint(n.ParamIdx)
		if n.Instr != nil {
			label = fmt.Sprintf("i%d: %s", n.Instr.ID, n.Instr)
		}
		label = strings.ReplaceAll(label, `"`, `'`)
		attrs := []string{fmt.Sprintf("label=\"n%d %s\\n%s\"", n.ID, n.Kind, label)}
		switch {
		case n.Class == ClassFixedFP:
			attrs = append(attrs, "shape=ellipse", "style=dashed", "color=gray50")
		case p != nil && p.InFPa(n.ID):
			attrs = append(attrs, "shape=ellipse", "style=filled", "fillcolor=lightblue")
		default:
			attrs = append(attrs, "shape=box")
		}
		if p != nil {
			if p.CopyNodes[n.ID] {
				attrs = append(attrs, "peripheries=2", "color=blue")
			}
			if p.DupNodes[n.ID] {
				attrs = append(attrs, "peripheries=2", "color=purple")
			}
			if p.OutCopyNodes[n.ID] {
				attrs = append(attrs, "peripheries=2", "color=red")
			}
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for _, n := range g.Nodes {
		for _, c := range n.Children {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, c)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
