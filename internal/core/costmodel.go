package core

import "math"

// costModel is the single §6.1/§6.2 pricing path shared by the greedy
// schemes (advanced phase 1/2, the balanced demotion pass), the optimal
// partition oracle, and the fpibench cost-model calibration. It holds the
// per-node copy/duplicate costs (the §6.2 fixpoint prepass) and knows how
// to derive transfer sets and price whole assignments, so every consumer
// computes Profit through exactly the same code and the profit-dominance
// invariant (optimal ≥ advanced ≥ basic) compares like with like.
type costModel struct {
	g      *Graph
	params CostParams

	// copyCost/dupCost per node (§6.2 prepass):
	//
	//	copy_cost(v) = o_copy * n_B(v)
	//	dupl_cost(v) = o_dupl * n_B(v) + Σ_i min(copy_cost(u_i), dupl_cost(u_i))
	//
	// iterated to a fixpoint from dupl_cost = ∞. Load-value nodes have no
	// parent term (their duplicate re-loads through the INT-side address);
	// parameter dummies, calls, returns and jumps cannot be duplicated.
	copyCost []float64
	dupCost  []float64
}

// newCostModel normalizes the parameters (non-positive o_copy selects the
// paper-midpoint defaults, matching the historical AdvancedPartition
// behavior) and runs the §6.2 fixpoint.
func newCostModel(g *Graph, params CostParams) *costModel {
	if params.OCopy <= 0 {
		params = DefaultCostParams()
	}
	cm := &costModel{g: g, params: params}
	n := len(g.Nodes)
	cm.copyCost = make([]float64, n)
	cm.dupCost = make([]float64, n)
	for _, nd := range g.Nodes {
		cm.copyCost[nd.ID] = params.OCopy * nd.Count
		cm.dupCost[nd.ID] = math.Inf(1)
	}
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, nd := range g.Nodes {
			if !cm.duplicable(nd.ID) {
				continue
			}
			c := params.ODupl * nd.Count
			if nd.Kind != KindLoadVal {
				for _, p := range nd.Parents {
					if !cm.partitionable(p) {
						continue
					}
					c += math.Min(cm.copyCost[p], cm.dupCost[p])
				}
			}
			if c < cm.dupCost[nd.ID]-1e-9 {
				cm.dupCost[nd.ID] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cm
}

func (cm *costModel) count(v NodeID) float64 { return cm.g.Nodes[v].Count }

func (cm *costModel) partitionable(v NodeID) bool {
	return cm.g.Nodes[v].Class != ClassFixedFP
}

// duplicable reports whether v may be re-executed on the FPa side at all:
// fixed-FP nodes are outside the partitioning problem, and parameter
// dummies, calls, returns and jumps have no FPa re-execution (the value
// only materializes in an integer register).
func (cm *costModel) duplicable(v NodeID) bool {
	nd := cm.g.Nodes[v]
	return nd.Class != ClassFixedFP && nd.Kind != KindParam &&
		nd.Kind != KindCall && nd.Kind != KindRet && nd.Kind != KindJump
}

// transferOverhead is min(copy, dup) — the cheapest way to make v's value
// available in FPa while v executes in INT.
func (cm *costModel) transferOverhead(v NodeID) float64 {
	return math.Min(cm.copyCost[v], cm.dupCost[v])
}

func (cm *costModel) preferDup(v NodeID) bool {
	return cm.dupCost[v] < cm.copyCost[v]
}

// transferSet computes, for an arbitrary assignment (inINT over all nodes;
// FixedFP entries are ignored), the set of INT-side definitions that must
// be made FPa-available: every INT node with an FPa child, closed under
// duplicate operand requirements (a duplicated node's INT parents must
// themselves be transferred). Each needed node becomes a duplicate when
// that is strictly cheaper, a copy otherwise.
func (cm *costModel) transferSet(inINT []bool) (copies, dups map[NodeID]bool) {
	copies = make(map[NodeID]bool)
	dups = make(map[NodeID]bool)
	var work []NodeID
	need := make(map[NodeID]bool)
	add := func(v NodeID) {
		if !need[v] {
			need[v] = true
			work = append(work, v)
		}
	}
	inFPa := func(v NodeID) bool { return cm.partitionable(v) && !inINT[v] }
	for _, n := range cm.g.Nodes {
		if !cm.partitionable(n.ID) || !inINT[n.ID] {
			continue
		}
		for _, c := range n.Children {
			if inFPa(c) {
				add(n.ID)
				break
			}
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if cm.preferDup(v) {
			dups[v] = true
			if cm.g.Nodes[v].Kind != KindLoadVal {
				for _, p := range cm.g.Nodes[v].Parents {
					if cm.partitionable(p) && inINT[p] {
						add(p)
					}
				}
			}
		} else {
			copies[v] = true
		}
	}
	return copies, dups
}

// priceAssignment prices a full assignment with the §6.1 model: benefit is
// the profile weight of the FPa members; overhead is the copy/duplicate
// traffic implied by the transfer set plus the §6.4 FPa→INT copies for
// actual-argument members. Profit = benefit − overhead. This is the same
// accounting the advanced scheme's phase 2 applies per component, summed
// over the whole graph.
func (cm *costModel) priceAssignment(inINT []bool) (benefit, overhead float64) {
	copies, dups := cm.transferSet(inINT)
	for _, n := range cm.g.Nodes {
		switch {
		case cm.partitionable(n.ID) && !inINT[n.ID]:
			benefit += n.Count
			if n.IsActualArg {
				overhead += cm.copyCost[n.ID]
			}
		case copies[n.ID]:
			overhead += cm.copyCost[n.ID]
		case dups[n.ID]:
			overhead += cm.params.ODupl * n.Count
		}
	}
	return benefit, overhead
}

// compPricer prices assignments restricted to one undirected RDG component
// without allocating per call — the oracle's branch-and-bound evaluates
// thousands of leaves per component. Transfer needs never escape an
// undirected component (a transfer node is a parent of an FPa member, hence
// a neighbor), so pricing the component in isolation is exact.
type compPricer struct {
	cm    *costModel
	nodes []NodeID // partitionable members of the component

	// scratch, indexed by NodeID over the whole graph
	need    []bool
	work    []NodeID
	touched []NodeID
}

func newCompPricer(cm *costModel, nodes []NodeID) *compPricer {
	return &compPricer{cm: cm, nodes: nodes, need: make([]bool, len(cm.g.Nodes))}
}

// compPrice is the §6.1 component price breakdown.
type compPrice struct {
	Benefit   float64
	Overhead  float64
	Transfers int // copy/duplicate nodes the assignment needs
}

func (p compPrice) Profit() float64 { return p.Benefit - p.Overhead }

// price returns the §6.1 price of placing exactly the inFPa-marked members
// of the component in FPa (inFPa is indexed by NodeID over the whole graph;
// entries outside the component must be false).
func (cp *compPricer) price(inFPa []bool) compPrice {
	cm := cp.cm
	benefit, overhead := 0.0, 0.0
	cp.work = cp.work[:0]
	cp.touched = cp.touched[:0]
	add := func(v NodeID) {
		if !cp.need[v] {
			cp.need[v] = true
			cp.work = append(cp.work, v)
			cp.touched = append(cp.touched, v)
		}
	}
	for _, id := range cp.nodes {
		if !inFPa[id] {
			continue
		}
		n := cm.g.Nodes[id]
		benefit += n.Count
		if n.IsActualArg {
			overhead += cm.copyCost[id]
		}
		for _, p := range n.Parents {
			if cm.partitionable(p) && !inFPa[p] {
				add(p)
			}
		}
	}
	for i := 0; i < len(cp.work); i++ {
		v := cp.work[i]
		if cm.preferDup(v) {
			overhead += cm.params.ODupl * cm.g.Nodes[v].Count
			if cm.g.Nodes[v].Kind != KindLoadVal {
				for _, p := range cm.g.Nodes[v].Parents {
					if cm.partitionable(p) && !inFPa[p] {
						add(p)
					}
				}
			}
		} else {
			overhead += cm.copyCost[v]
		}
	}
	transfers := len(cp.work)
	for _, v := range cp.touched {
		cp.need[v] = false
	}
	return compPrice{Benefit: benefit, Overhead: overhead, Transfers: transfers}
}
