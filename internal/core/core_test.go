package core_test

import (
	"strings"
	"testing"

	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/ir"
	"fpint/internal/irgen"
	"fpint/internal/lang"
	"fpint/internal/opt"
)

// build compiles src and returns the module plus a self-profile.
func build(t *testing.T, src string) (*ir.Module, *interp.Profile) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := irgen.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Optimize(mod)
	res, err := interp.New(mod).Run()
	if err != nil {
		t.Fatalf("profile run: %v", err)
	}
	return mod, res.Profile
}

// gccFragment mirrors the paper's Figure 3 (invalidate_for_call from gcc):
// a loop over pseudo registers whose body loads a bitmask, tests a bit, and
// conditionally increments reg_tick[regno].
const gccFragment = `
int regs_invalidated_by_call = 12297829382473034410;
int reg_tick[66];
int deleted;

void delete_equiv_reg(int regno) { deleted += regno; }

void invalidate_for_call() {
	for (int regno = 0; regno < 66; regno++) {
		if (regs_invalidated_by_call & (1 << regno)) {
			delete_equiv_reg(regno);
			if (reg_tick[regno] >= 0) reg_tick[regno]++;
		}
	}
}

int main() {
	for (int i = 0; i < 66; i++) reg_tick[i] = i - 3;
	invalidate_for_call();
	return deleted;
}
`

func TestBasicPartitionGccFragment(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	if fn == nil {
		t.Fatal("missing function")
	}
	g := core.BuildGraph(fn, prof)
	p := core.BasicPartition(g)
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// No copies or duplicates in the basic scheme.
	if len(p.CopyNodes)+len(p.DupNodes)+len(p.OutCopyNodes) != 0 {
		t.Fatalf("basic scheme introduced transfers")
	}
	// The reg_tick[regno]++ store-value component (load value, +1, store
	// value) must be offloaded: at least one load-value node and one
	// store-value node in FPa.
	loadValFPa, storeValFPa := 0, 0
	for _, n := range g.Nodes {
		if !p.InFPa(n.ID) {
			continue
		}
		switch n.Kind {
		case core.KindLoadVal:
			loadValFPa++
		case core.KindStoreVal:
			storeValFPa++
		}
	}
	if loadValFPa == 0 || storeValFPa == 0 {
		t.Errorf("expected reg_tick increment component in FPa: loadVal=%d storeVal=%d", loadValFPa, storeValFPa)
	}
	// All load/store address nodes must be INT.
	for _, n := range g.Nodes {
		if (n.Kind == core.KindLoadAddr || n.Kind == core.KindStoreAddr) && p.InFPa(n.ID) {
			t.Fatalf("address node n%d in FPa", n.ID)
		}
	}
}

func TestAdvancedOffloadsMoreThanBasic(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	g := core.BuildGraph(fn, prof)
	basic := core.BasicPartition(g)
	adv := core.AdvancedPartition(g, core.DefaultCostParams())
	if err := adv.Validate(); err != nil {
		t.Fatalf("advanced validate: %v", err)
	}
	bs := basic.ComputeStats()
	as := adv.ComputeStats()
	if as.FPaWeight < bs.FPaWeight {
		t.Errorf("advanced FPa weight %.1f < basic %.1f", as.FPaWeight, bs.FPaWeight)
	}
	// The branch slice of the loop (regno < 66) should now be offloadable
	// via a copy or duplicate of the induction variable update.
	if as.Copies+as.Dups == 0 {
		t.Errorf("advanced scheme introduced no transfers on the gcc fragment")
	}
}

// TestMemoryFreeFunctionMovesWholesale reproduces the §6.6 observation: the
// compress benchmark's rand-like function performs no memory access, so the
// greedy schemes move essentially the whole function to FPa.
func TestMemoryFreeFunctionMovesWholesale(t *testing.T) {
	src := `
int seed;
int rand20() {
	int s = seed;
	int r = 0;
	for (int i = 0; i < 20; i++) {
		s = s * 1103515245 + 12345;
		r = r ^ (s >> 16);
	}
	seed = s;
	return r & 32767;
}
int main() {
	seed = 99;
	return rand20();
}
`
	mod, prof := build(t, src)
	fn := mod.Lookup("rand20")
	g := core.BuildGraph(fn, prof)
	p := core.AdvancedPartition(g, core.DefaultCostParams())
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	st := p.ComputeStats()
	// The multiply-based LCG pins some nodes to INT (no integer multiply in
	// FPa), but the xor/shift/branch body should be largely offloaded.
	if st.FPaWeight == 0 {
		t.Errorf("memory-free function offloaded nothing; stats %+v", st)
	}
}

func TestLdStSliceDominatesIntegerCode(t *testing.T) {
	src := `
int a[256];
int b[256];
int main() {
	for (int i = 0; i < 256; i++) a[i] = i;
	int s = 0;
	for (int i = 0; i < 256; i++) {
		b[i] = a[i] + a[(i+1) & 255];
		s += b[i];
	}
	return s;
}
`
	mod, prof := build(t, src)
	fn := mod.Lookup("main")
	g := core.BuildGraph(fn, prof)
	st := g.ComputeSliceStats()
	if st.TotalWeight <= 0 {
		t.Fatal("no weight")
	}
	frac := st.LdStWeight / st.TotalWeight
	// The paper (§4, citing [26]) puts LdSt slices close to 50% of dynamic
	// instructions for integer programs. Memory-heavy code should be well
	// above 30%.
	if frac < 0.3 {
		t.Errorf("LdSt slice fraction %.2f too small", frac)
	}
}

func TestPartitionValidatesAcrossPrograms(t *testing.T) {
	srcs := map[string]string{
		"calls": `
int g;
int helper(int x, int y) { return x*2 + y; }
int main() {
	int s = 0;
	for (int i = 0; i < 50; i++) s = helper(s, i);
	g = s;
	return s & 1023;
}`,
		"floats": `
float acc[16];
int main() {
	float s = 0.0;
	for (int i = 0; i < 16; i++) acc[i] = (float) i;
	for (int i = 0; i < 16; i++) s += acc[i];
	return (int) s;
}`,
		"branches": `
int hist[8];
int main() {
	int x = 12345;
	for (int i = 0; i < 200; i++) {
		x = x * 31 + 7;
		int b = (x >> 3) & 7;
		if (b > 4) hist[b]++;
		else if (b > 2) hist[0]++;
		else hist[1] += 2;
	}
	int s = 0;
	for (int i = 0; i < 8; i++) s += hist[i];
	return s;
}`,
		"recursion": `
int depth;
int walk(int n) {
	if (n <= 1) return 1;
	depth++;
	return walk(n/2) + walk(n-1) % 97;
}
int main() { return walk(18) & 4095; }`,
	}
	for name, src := range srcs {
		src := src
		t.Run(name, func(t *testing.T) {
			mod, prof := build(t, src)
			for _, fn := range mod.Funcs {
				g := core.BuildGraph(fn, prof)
				basic := core.BasicPartition(g)
				if err := basic.Validate(); err != nil {
					t.Errorf("%s basic: %v", fn.Name, err)
				}
				adv := core.AdvancedPartition(g, core.DefaultCostParams())
				if err := adv.Validate(); err != nil {
					t.Errorf("%s advanced: %v", fn.Name, err)
				}
				bs, as := basic.ComputeStats(), adv.ComputeStats()
				if as.FPaWeight+1e-6 < bs.FPaWeight {
					t.Errorf("%s: advanced (%.1f) offloads less than basic (%.1f)",
						fn.Name, as.FPaWeight, bs.FPaWeight)
				}
			}
		})
	}
}

func TestSlicesStopAtLoadValues(t *testing.T) {
	src := `
int a[8];
int b[8];
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) {
		b[i] = a[i] + 1;
		s += b[i];
	}
	return s;
}
`
	mod, prof := build(t, src)
	fn := mod.Lookup("main")
	g := core.BuildGraph(fn, prof)
	// For each load: the backward slice of its value node must not contain
	// its own address node (slices stop at load values).
	for _, n := range g.Nodes {
		if n.Kind != core.KindLoadVal {
			continue
		}
		addrID, ok := g.LoadAddrNode(n.Instr.ID)
		if !ok {
			t.Fatal("missing addr node")
		}
		back := g.BackwardSlice(n.ID)
		if back[addrID] {
			t.Errorf("backward slice of load value includes its address node")
		}
	}
}

func TestCostParamsRespectDuplPreference(t *testing.T) {
	// With a huge o_dupl, nothing should be duplicated.
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	g := core.BuildGraph(fn, prof)
	p := core.AdvancedPartition(g, core.CostParams{OCopy: 4, ODupl: 100})
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(p.DupNodes) != 0 {
		t.Errorf("expected no duplications with o_dupl >> o_copy, got %d", len(p.DupNodes))
	}
}

func TestGraphDeterminism(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	g1 := core.BuildGraph(fn, prof)
	g2 := core.BuildGraph(fn, prof)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ")
	}
	p1 := core.AdvancedPartition(g1, core.DefaultCostParams())
	p2 := core.AdvancedPartition(g2, core.DefaultCostParams())
	for i := range p1.Assign {
		if p1.Assign[i] != p2.Assign[i] {
			t.Fatalf("nondeterministic assignment at node %d", i)
		}
	}
}

func TestDotGraphRendering(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	g := core.BuildGraph(fn, prof)
	p := core.AdvancedPartition(g, core.DefaultCostParams())
	dot := core.DotGraph(g, p)
	for _, want := range []string{"digraph", "->", "fillcolor=lightblue", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Plain rendering without a partition also works.
	if plain := core.DotGraph(g, nil); !strings.Contains(plain, "digraph") {
		t.Error("plain dot rendering broken")
	}
}
