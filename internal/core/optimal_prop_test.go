package core

import (
	"math"
	"math/rand"
	"testing"

	"fpint/internal/fperr"
	"fpint/internal/ir"
)

// randomGraph generates a small synthetic RDG: a random DAG over a mix of
// flexible plain/branch/load-value nodes, pinned integer nodes (mul/div
// stand-ins), call nodes, and parameter dummies. Structural conventions
// match BuildGraph: parameter dummies and branches have no incoming /
// outgoing value edges respectively, and IsActualArg marks parents of
// call nodes.
func randomGraph(r *rand.Rand, n int) *Graph {
	g := &Graph{Fn: &ir.Func{Name: "synthetic"}}
	for i := 0; i < n; i++ {
		var kind NodeKind
		var class Class
		switch roll := r.Intn(100); {
		case roll < 50:
			kind, class = KindPlain, ClassFlex
		case roll < 62:
			kind, class = KindBranch, ClassFlex
		case roll < 72:
			kind, class = KindLoadVal, ClassFlex
		case roll < 84:
			kind, class = KindPlain, ClassPinInt // integer mul/div stand-in
		case roll < 94:
			kind, class = KindCall, ClassPinInt
		default:
			kind, class = KindParam, ClassPinInt
		}
		g.Nodes = append(g.Nodes, &Node{
			ID:    NodeID(i),
			Kind:  kind,
			Class: class,
			Count: float64(r.Intn(40)+1) * 0.5,
		})
	}
	for i := 0; i < n; i++ {
		src := g.Nodes[i]
		if src.Kind == KindBranch {
			continue // branches produce no register value
		}
		for j := i + 1; j < n; j++ {
			dst := g.Nodes[j]
			if dst.Kind == KindParam {
				continue // parameter dummies are pure definitions
			}
			if r.Intn(100) < 22 {
				src.Children = append(src.Children, dst.ID)
				dst.Parents = append(dst.Parents, src.ID)
			}
		}
	}
	for _, nd := range g.Nodes {
		for _, c := range nd.Children {
			if k := g.Nodes[c].Kind; k == KindCall || k == KindRet {
				nd.IsActualArg = true
				break
			}
		}
	}
	return g
}

func randomParams(r *rand.Rand) CostParams {
	return CostParams{
		OCopy: 3 + 3*r.Float64(),     // paper range [3, 6]
		ODupl: 1.5 + 1.5*r.Float64(), // paper range [1.5, 3]
	}
}

// legalSet reports whether the FPa set marked in inFPa is legal: every
// member's non-FixedFP child is either in the set or a call/return node.
func legalSet(g *Graph, inFPa []bool) bool {
	for _, nd := range g.Nodes {
		if !inFPa[nd.ID] {
			continue
		}
		for _, c := range nd.Children {
			cn := g.Nodes[c]
			if cn.Class == ClassFixedFP || inFPa[c] {
				continue
			}
			if cn.Kind != KindCall && cn.Kind != KindRet {
				return false
			}
		}
	}
	return true
}

// bruteForceOptimal enumerates every legal FPa subset of the eligible
// nodes and returns the maximum §6.1 profit, priced through the same cost
// model as the oracle.
func bruteForceOptimal(t *testing.T, g *Graph, params CostParams) float64 {
	t.Helper()
	cm := newCostModel(g, params)
	eligible := oracleEligible(g)
	var ids []NodeID
	for _, nd := range g.Nodes {
		if eligible[nd.ID] {
			ids = append(ids, nd.ID)
		}
	}
	if len(ids) > 16 {
		t.Fatalf("brute force over %d eligible nodes is unreasonable", len(ids))
	}
	inFPa := make([]bool, len(g.Nodes))
	inINT := make([]bool, len(g.Nodes))
	best := 0.0
	for mask := 0; mask < 1<<len(ids); mask++ {
		for i, id := range ids {
			inFPa[id] = mask&(1<<i) != 0
		}
		if !legalSet(g, inFPa) {
			continue
		}
		for _, nd := range g.Nodes {
			if nd.Class != ClassFixedFP {
				inINT[nd.ID] = !inFPa[nd.ID]
			}
		}
		benefit, overhead := cm.priceAssignment(inINT)
		if p := benefit - overhead; p > best {
			best = p
		}
	}
	return best
}

// TestOracleMatchesBruteForce is the satellite property test: on small
// random RDGs the branch-and-bound oracle must find exactly the
// brute-force optimum, produce a verifier-clean partition whose priced
// profit equals the reported one, and dominate the greedy profit.
func TestOracleMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		n := 3 + r.Intn(10) // ≤ 12 offloadable nodes
		g := randomGraph(r, n)
		params := randomParams(r)

		p, report := OptimalPartition(g, params, OracleLimits{}, nil)
		if report.Degraded != 0 {
			t.Fatalf("trial %d: oracle degraded on a %d-node graph", trial, n)
		}
		if err := VerifyPartition(p); err != nil {
			t.Fatalf("trial %d: oracle partition fails the verifier: %v", trial, err)
		}

		want := bruteForceOptimal(t, g, params)
		if math.Abs(report.OptimalProfit-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: oracle profit %.12f != brute force %.12f (gap %g)",
				trial, report.OptimalProfit, want, report.OptimalProfit-want)
		}
		if report.OptimalProfit < report.GreedyProfit-1e-9 {
			t.Fatalf("trial %d: oracle profit %.12f below greedy %.12f",
				trial, report.OptimalProfit, report.GreedyProfit)
		}

		// The reported profit must equal the §6.1 price of the partition
		// actually returned.
		cm := newCostModel(g, params)
		inINT := make([]bool, len(g.Nodes))
		for _, nd := range g.Nodes {
			if nd.Class != ClassFixedFP {
				inINT[nd.ID] = p.Assign[nd.ID] == SubINT
			}
		}
		benefit, overhead := cm.priceAssignment(inINT)
		if got := benefit - overhead; math.Abs(got-report.OptimalProfit) > 1e-9 {
			t.Fatalf("trial %d: partition prices to %.12f but report says %.12f",
				trial, got, report.OptimalProfit)
		}
	}
}

// TestOracleBoundAdmissible checks the pruning bound directly: for random
// propagated partial assignments, the upper bound must dominate the profit
// of every legal completion — i.e. the bound never prunes the optimum.
func TestOracleBoundAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		g := randomGraph(r, 3+r.Intn(10))
		params := randomParams(r)
		cm := newCostModel(g, params)
		eligible := oracleEligible(g)
		comp := undirectedComponents(g)

		nComp := 0
		for _, c := range comp {
			if c >= nComp {
				nComp = c + 1
			}
		}
		members := make([][]NodeID, nComp)
		for _, nd := range g.Nodes {
			if c := comp[nd.ID]; c >= 0 {
				members[c] = append(members[c], nd.ID)
			}
		}
		for c := 0; c < nComp; c++ {
			var vars []NodeID
			for _, id := range members[c] {
				if eligible[id] {
					vars = append(vars, id)
				}
			}
			if len(vars) == 0 {
				continue
			}
			scratch := make([]bool, len(g.Nodes))
			budget := int64(1 << 30)
			pricer := newCompPricer(cm, members[c])
			b := newBBState(cm, pricer, scratch, vars, &budget)

			// Random partial assignment via the real propagation.
			for i := range b.vars {
				if b.status[i] != stUndec || r.Intn(3) == 0 {
					continue
				}
				val := uint8(stIn)
				if r.Intn(2) == 0 {
					val = stOut
				}
				mark := len(b.trail)
				if !b.propagate(i, val) {
					b.undo(mark)
				}
			}
			ub := b.upperBound()

			// Enumerate every completion of the undecided variables and
			// keep the best legal profit.
			var undec []int
			for i := range b.vars {
				if b.status[i] == stUndec {
					undec = append(undec, i)
				}
			}
			if len(undec) > 16 {
				t.Fatalf("trial %d: %d undecided vars", trial, len(undec))
			}
			inFPa := make([]bool, len(g.Nodes))
			best := math.Inf(-1)
			for mask := 0; mask < 1<<len(undec); mask++ {
				for i := range b.vars {
					inFPa[b.vars[i]] = b.status[i] == stIn
				}
				for k, i := range undec {
					if mask&(1<<k) != 0 {
						inFPa[b.vars[i]] = true
					}
				}
				if !legalSet(g, inFPa) {
					continue
				}
				if p := pricer.price(inFPa).Profit(); p > best {
					best = p
				}
			}
			if !math.IsInf(best, -1) && ub < best-1e-9 {
				t.Fatalf("trial %d comp %d: upper bound %.12f below a reachable completion %.12f",
					trial, c, ub, best)
			}
		}
	}
}

// TestOracleDegradedFallback covers both caps: an over-wide component
// (node-count cap) and an exhausted expansion budget. Both must keep a
// verifier-clean partition whose profit still dominates greedy, and
// surface ClassDegraded through the report.
func TestOracleDegradedFallback(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// A long chain of flexible nodes: one component, 40 eligible nodes.
	g := &Graph{Fn: &ir.Func{Name: "wide"}}
	for i := 0; i < 40; i++ {
		g.Nodes = append(g.Nodes, &Node{ID: NodeID(i), Kind: KindPlain, Class: ClassFlex, Count: float64(i%7) + 1})
		if i > 0 {
			g.Nodes[i-1].Children = append(g.Nodes[i-1].Children, NodeID(i))
			g.Nodes[i].Parents = append(g.Nodes[i].Parents, NodeID(i-1))
		}
	}
	p, report := OptimalPartition(g, DefaultCostParams(), OracleLimits{MaxFlexNodes: 30}, nil)
	if report.Degraded != 1 {
		t.Fatalf("want 1 degraded component, got %d", report.Degraded)
	}
	if err := VerifyPartition(p); err != nil {
		t.Fatalf("degraded partition fails the verifier: %v", err)
	}
	if report.OptimalProfit < report.GreedyProfit {
		t.Fatalf("degraded oracle profit %.2f below greedy %.2f", report.OptimalProfit, report.GreedyProfit)
	}
	if err := report.Err(); fperr.ClassOf(err) != fperr.ClassDegraded {
		t.Fatalf("want ClassDegraded from report.Err(), got %v", err)
	}

	// Budget exhaustion on random graphs: never worse than greedy, always
	// verifier-clean, always flagged.
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r, 12)
		p, report := OptimalPartition(g, DefaultCostParams(), OracleLimits{MaxExpansions: 2}, nil)
		if err := VerifyPartition(p); err != nil {
			t.Fatalf("trial %d: budget-capped partition fails the verifier: %v", trial, err)
		}
		if report.OptimalProfit < report.GreedyProfit-1e-9 {
			t.Fatalf("trial %d: capped profit %.12f below greedy %.12f",
				trial, report.OptimalProfit, report.GreedyProfit)
		}
		if len(report.Components) > 0 && report.Degraded > 0 && report.Err() == nil {
			t.Fatalf("trial %d: degraded report returned nil Err", trial)
		}
	}
}

// TestOracleMemo checks that the component-signature memo replays stored
// optima: a second run over the same graph answers every component from
// the cache with an identical partition and report.
func TestOracleMemo(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r, 3+r.Intn(10))
		params := randomParams(r)
		memo := NewOracleMemo()

		p1, rep1 := OptimalPartition(g, params, OracleLimits{}, memo)
		hitsAfterFirst := memo.Hits()
		p2, rep2 := OptimalPartition(g, params, OracleLimits{}, memo)

		if len(rep1.Components) > 0 && memo.Hits() <= hitsAfterFirst {
			t.Fatalf("trial %d: second run hit the memo %d times (first-run hits %d)",
				trial, memo.Hits()-hitsAfterFirst, hitsAfterFirst)
		}
		if rep1.OptimalProfit != rep2.OptimalProfit {
			t.Fatalf("trial %d: memo changed the profit: %.12f vs %.12f",
				trial, rep1.OptimalProfit, rep2.OptimalProfit)
		}
		for id := range p1.Assign {
			if p1.Assign[id] != p2.Assign[id] {
				t.Fatalf("trial %d: memo changed the assignment of n%d", trial, id)
			}
		}
		if err := VerifyPartition(p2); err != nil {
			t.Fatalf("trial %d: memo-replayed partition fails the verifier: %v", trial, err)
		}
	}
}
