package core

// CostParams are the cost-model constants of §6.1. The paper determined
// empirically that o_copy between 3 and 6 and o_dupl between 1.5 and 3 give
// the best results, and requires o_dupl < o_copy (otherwise nothing would
// ever be duplicated).
type CostParams struct {
	OCopy float64
	ODupl float64

	// Provenance optionally records where the constants came from — e.g. a
	// fpint-calib/v1 self-calibration fit instead of the paper's defaults.
	// Schemes copy it into the partition audit trail so -explain output and
	// compile reports show which cost model priced the decisions.
	Provenance string `json:",omitempty"`
}

// DefaultCostParams returns the midpoint of the paper's empirical ranges.
func DefaultCostParams() CostParams { return CostParams{OCopy: 4, ODupl: 2} }

// AdvancedPartition implements the advanced partitioning scheme (§6):
// starting from the LdSt slice in INT, it expands the INT boundary where
// offloading is unprofitable (Phase 1), then tentatively introduces copy and
// duplicate instructions for the remaining boundary and keeps only
// profitable connected components (Phase 2). Calling-convention interaction
// follows §6.4: formal parameters are INT-pinned dummy nodes, and producers
// of integer call arguments / return values pay an FPa→INT copy if they
// stay in FPa.
func AdvancedPartition(g *Graph, params CostParams) *Partition {
	return advancedPartition(newCostModel(g, params))
}

// advancedPartition runs the advanced scheme over an already-built cost
// model (the oracle and the calibration loop reuse the model across runs).
func advancedPartition(cm *costModel) *Partition {
	a := &advancedState{
		costModel: cm,
		inINT:     make([]bool, len(cm.g.Nodes)),
	}
	a.initINT()
	a.phase1()
	a.phase2()
	return a.finish()
}

type advancedState struct {
	// costModel supplies the graph, the parameters, and the §6.2
	// copy/duplicate costs — the same pricing path the oracle and the
	// calibration use.
	*costModel

	// inINT[v] — node currently assigned to the INT partition. FixedFP
	// nodes are never members of either partition.
	inINT []bool

	// audit records the phase-2 component decisions.
	audit *Audit
}

func (a *advancedState) inFPa(v NodeID) bool {
	return a.partitionable(v) && !a.inINT[v]
}

// initINT seeds the INT partition: the LdSt slice (step 1 of the §6.3
// algorithm) plus every pinned node, plus the backward slices of pinned
// nodes that cannot receive FPa values at all (integer multiply/divide —
// there is no transfer mechanism into them, unlike calls/returns, which
// §6.4 handles with FPa→INT copies).
func (a *advancedState) initINT() {
	var hardRoots []NodeID // nodes whose entire backward slice must be INT
	for _, n := range a.g.Nodes {
		if n.Class != ClassPinInt {
			continue
		}
		a.inINT[n.ID] = true
		switch n.Kind {
		case KindLoadAddr, KindStoreAddr:
			hardRoots = append(hardRoots, n.ID)
		case KindPlain: // integer mul/div/rem
			hardRoots = append(hardRoots, n.ID)
		}
	}
	for v := range a.g.BackwardSlice(hardRoots...) {
		if a.partitionable(v) {
			a.inINT[v] = true
		}
	}
}

// phase1 expands the INT boundary (§6.3 lines 2–15). For each candidate
// FPa node u reachable from the boundary, it computes the loss to FPa if
// the FPa portion of u's backward slice P were assigned to INT:
//
//	loss = Σ_{v∈P} term(v) + Σ_{v∈Q} δ(v)
//
// where term(v) = n_v + α(v) (α(v) = transfer overhead if v would still
// have FPa children outside P), except for actual-argument nodes, whose
// term becomes −copying_cost(v) (§6.4); and δ(v) for boundary parents Q of
// P is −overhead(v) when moving P saves v's transfer. loss < 0 moves P to
// INT; loss == 0 defers the decision to P's children.
func (a *advancedState) phase1() {
	// Work queue of candidate FPa nodes. A node is examined at most once
	// per INT-partition state: the examined marks are only cleared when the
	// boundary actually expands, which bounds the loop (INT growth is
	// monotone), even when deferred (loss == 0) decisions chase cycles in
	// the RDG.
	var queue []NodeID
	queued := make([]bool, len(a.g.Nodes))
	examined := make([]bool, len(a.g.Nodes))
	push := func(v NodeID) {
		if a.inFPa(v) && !queued[v] && !examined[v] {
			queued[v] = true
			queue = append(queue, v)
		}
	}
	for _, n := range a.g.Nodes {
		if !a.partitionable(n.ID) || !a.inINT[n.ID] {
			continue
		}
		for _, c := range n.Children {
			push(c)
		}
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		queued[u] = false
		if !a.inFPa(u) || examined[u] {
			continue
		}
		examined[u] = true
		// P = FPa nodes in Backward-Slice(G, u).
		var P []NodeID
		inP := make(map[NodeID]bool)
		for v := range a.g.BackwardSlice(u) {
			if a.inFPa(v) {
				P = append(P, v)
				inP[v] = true
			}
		}
		loss := 0.0
		for _, v := range P {
			nd := a.g.Nodes[v]
			if nd.IsActualArg {
				// §6.4: beneficial to move an actual-parameter node to INT
				// since the FPa→INT copy is then no longer needed.
				loss -= a.copyCost[v]
				continue
			}
			term := nd.Count
			// α(v): if v still has FPa children outside P after the move,
			// v must be transferred anyway.
			for _, c := range nd.Children {
				if a.inFPa(c) && !inP[c] {
					term += a.transferOverhead(v)
					break
				}
			}
			loss += term
		}
		// Q: INT boundary parents of P. Moving P to INT saves their
		// transfer when P contains all their FPa children.
		qSeen := make(map[NodeID]bool)
		for _, v := range P {
			for _, par := range a.g.Nodes[v].Parents {
				if !a.partitionable(par) || !a.inINT[par] || qSeen[par] {
					continue
				}
				qSeen[par] = true
				hasOtherFPaChild := false
				for _, c := range a.g.Nodes[par].Children {
					if a.inFPa(c) && !inP[c] {
						hasOtherFPaChild = true
						break
					}
				}
				if !hasOtherFPaChild {
					loss -= a.transferOverhead(par)
				}
			}
		}

		const eps = 1e-9
		switch {
		case loss < -eps:
			// Expand the INT boundary: move P to INT. The partition state
			// changed, so earlier verdicts may no longer hold — clear the
			// examined marks and re-seed from P's remaining FPa children.
			for _, v := range P {
				a.inINT[v] = true
			}
			for i := range examined {
				examined[i] = false
			}
			for _, v := range P {
				for _, c := range a.g.Nodes[v].Children {
					push(c)
				}
			}
		case loss <= eps:
			// Defer: too little information; examine P's FPa children,
			// which see a larger portion of the graph.
			for _, v := range P {
				for _, c := range a.g.Nodes[v].Children {
					if !inP[c] {
						push(c)
					}
				}
			}
		}
	}
}

// transferSet derives the copy/duplicate sets for the current assignment
// through the shared cost model.
func (a *advancedState) transferSet() (copies, dups map[NodeID]bool) {
	return a.costModel.transferSet(a.inINT)
}

// phase2 tentatively introduces the copies and duplicates implied by the
// Phase 1 boundary, then evaluates each connected component of the
// resulting graph with the cost model and assigns unprofitable components
// back to INT (§6.3 lines 16–26).
//
// Crucially, the tentatively-inserted copy/duplicate nodes join the
// undirected graph: a single copy of a loop induction variable merges every
// branch slice it feeds into one component, exactly as in the paper's
// Figure 5 (copies 1c and 15c create one new connected component holding
// both branch slices). Component membership is computed with a union-find
// over FPa nodes and transfer nodes.
func (a *advancedState) phase2() {
	copies, dups := a.transferSet()

	uf := newUnionFind(len(a.g.Nodes))
	// FPa-FPa edges.
	for _, n := range a.g.Nodes {
		if !a.inFPa(n.ID) {
			continue
		}
		for _, c := range n.Children {
			if a.inFPa(c) {
				uf.union(int(n.ID), int(c))
			}
		}
	}
	isTransfer := func(v NodeID) bool { return copies[v] || dups[v] }
	// A transfer node joins the components of its FPa consumers; a
	// duplicated transfer also joins its supplying transfers (its INT
	// parents in the transfer set), since the duplicate executes in FPa on
	// their values.
	for _, n := range a.g.Nodes {
		if !isTransfer(n.ID) {
			continue
		}
		for _, c := range n.Children {
			if a.inFPa(c) || isTransfer(c) {
				uf.union(int(n.ID), int(c))
			}
		}
		if dups[n.ID] && n.Kind != KindLoadVal {
			for _, p := range n.Parents {
				if isTransfer(p) {
					uf.union(int(n.ID), int(p))
				}
			}
		}
	}

	// Benefit/overhead per component root: benefit is the weight of the
	// FPa members; overhead is the copy/duplicate traffic plus the §6.4
	// FPa→INT copies for actual-argument members. Profit is the
	// difference; the aggregation doubles as the partition-decision audit
	// trail.
	type compAgg struct {
		minNode   NodeID
		nodes     int
		transfers int
		benefit   float64
		overhead  float64
	}
	comps := make(map[int]*compAgg)
	get := func(id NodeID) *compAgg {
		root := uf.find(int(id))
		c, ok := comps[root]
		if !ok {
			c = &compAgg{minNode: id}
			comps[root] = c
		}
		if id < c.minNode {
			c.minNode = id
		}
		return c
	}
	for _, n := range a.g.Nodes {
		switch {
		case a.inFPa(n.ID):
			c := get(n.ID)
			c.nodes++
			c.benefit += n.Count
			if n.IsActualArg {
				c.overhead += a.copyCost[n.ID]
			}
		case isTransfer(n.ID):
			c := get(n.ID)
			c.transfers++
			if dups[n.ID] {
				c.overhead += a.params.ODupl * n.Count
			} else {
				c.overhead += a.copyCost[n.ID]
			}
		}
	}

	profit := make(map[int]float64)
	a.audit = &Audit{Fn: a.g.Fn.Name, Scheme: "advanced"}
	for root, c := range comps {
		p := c.benefit - c.overhead
		profit[root] = p
		d := ComponentDecision{
			MinNode: c.minNode, Nodes: c.nodes, Transfers: c.transfers,
			Weight: c.benefit, Benefit: c.benefit, Overhead: c.overhead,
			Profit: p, Accepted: p >= 0,
		}
		if d.Accepted {
			d.Reason = "benefit covers copy/dup overhead: kept in FPa"
		} else {
			d.Reason = "copy/dup overhead exceeds benefit: moved back to INT"
		}
		a.audit.Components = append(a.audit.Components, d)
	}
	a.audit.Components = sortComponents(a.audit.Components)

	for _, n := range a.g.Nodes {
		if !a.inFPa(n.ID) {
			continue
		}
		if profit[uf.find(int(n.ID))] < 0 {
			a.inINT[n.ID] = true
		}
	}
}

// unionFind is a standard disjoint-set structure with path compression.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(x, y int) {
	rx, ry := u.find(x), u.find(y)
	if rx != ry {
		u.parent[rx] = ry
	}
}

// finish recomputes the final transfer sets for the settled assignment and
// packages the result.
func (a *advancedState) finish() *Partition {
	p := newPartition(a.g, "advanced")
	for _, n := range a.g.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		if a.inINT[n.ID] {
			p.Assign[n.ID] = SubINT
		} else {
			p.Assign[n.ID] = SubFPa
		}
	}
	copies, dups := a.transferSet()
	p.CopyNodes = copies
	p.DupNodes = dups
	for _, n := range a.g.Nodes {
		if a.inFPa(n.ID) && n.IsActualArg {
			p.OutCopyNodes[n.ID] = true
		}
	}
	p.Audit = a.audit
	if a.params.Provenance != "" {
		p.Audit.Notes = append(p.Audit.Notes, "cost model: "+a.params.Provenance)
	}
	attachUnpins(p)
	return p
}
