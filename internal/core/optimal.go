package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fpint/internal/fperr"
)

// This file implements the exact partition oracle: a branch-and-bound
// search for the §6.1-optimal FPa assignment, run independently per
// undirected RDG component. It exists to measure how much offload profit
// the paper's greedy schemes leave on the table (ROADMAP item 4) — the
// oracle is a compile-time analysis, priced through the same cost model as
// the greedy schemes, and its result is re-checked by the static partition
// verifier like any other scheme.
//
// Search space. A set S of nodes may execute in FPa iff
//
//  1. every member is flexible (pinned classes stay in INT; unpinned
//     address nodes are flexible and legal candidates), and
//  2. for every v ∈ S, every non-FixedFP child of v is either in S or a
//     call/return node (the §6.4 out-copy is the only legal FPa→INT edge).
//
// Condition 2 makes legal assignments exactly the forward-closed subsets
// of the *eligible* set: flexible nodes outside the backward closure of
// "has a pinned non-call/ret child". Values can always be transferred
// INT→FPa (copy/duplicate), so parents constrain nothing; children must
// follow their parents into FPa or be call/ret consumers of an out-copy.
//
// The search branches v∈S / v∉S with unit propagation over that closure
// (in ⇒ flexible children in; out ⇒ eligible parents out), prunes with an
// admissible profit upper bound, and seeds its incumbent from the advanced
// scheme's assignment — so the oracle's profit dominates the greedy result
// by construction, even when a cap degrades it.

// OracleLimits caps the exact search. Zero values select the defaults.
type OracleLimits struct {
	// MaxFlexNodes is the per-component cap on branch-and-bound variables
	// (eligible nodes). Components above the cap fall back to the greedy
	// assignment and mark the report degraded.
	MaxFlexNodes int
	// MaxExpansions is the per-function budget of branch expansions shared
	// by all components. Exhausting it keeps the best incumbent found so
	// far (never worse than greedy) and marks the report degraded.
	MaxExpansions int64
}

// DefaultOracleLimits bounds the search to comfortably handle every
// testdata program and benchmark workload exactly (the largest real
// component, ijpeg's 50-variable DCT row kernel, solves within a few
// hundred expansions — unit propagation and the profit bound do the work)
// while the expansion budget keeps adversarial fuzzer graphs from
// stalling a compile.
func DefaultOracleLimits() OracleLimits {
	return OracleLimits{MaxFlexNodes: 64, MaxExpansions: 1 << 20}
}

func (l OracleLimits) withDefaults() OracleLimits {
	d := DefaultOracleLimits()
	if l.MaxFlexNodes <= 0 {
		l.MaxFlexNodes = d.MaxFlexNodes
	}
	if l.MaxExpansions <= 0 {
		l.MaxExpansions = d.MaxExpansions
	}
	return l
}

// ComponentGap is the oracle's verdict on one undirected RDG component
// that had at least one eligible node: the greedy (advanced) profit, the
// optimal profit, and whether the search was exact.
type ComponentGap struct {
	Component     int     // stable index (ordered by lowest member node)
	MinNode       NodeID  // lowest-numbered member node
	FlexNodes     int     // eligible (branchable) nodes
	GreedyProfit  float64 // §6.1 profit of the advanced assignment, restricted to this component
	OptimalProfit float64 // profit of the oracle assignment
	Exact         bool    // true if the search completed within the limits
	Expansions    int64   // branch expansions spent on this component
	Reason        string  // "exact", "memo", or the degradation cause
}

// Gap is the profit the greedy scheme left on the table in this component.
func (c ComponentGap) Gap() float64 { return c.OptimalProfit - c.GreedyProfit }

// OracleReport summarizes the oracle run over one function.
type OracleReport struct {
	Fn         string
	Components []ComponentGap
	// GreedyProfit / OptimalProfit are the function totals over the
	// reported components (both priced through the shared cost model).
	GreedyProfit  float64
	OptimalProfit float64
	Expansions    int64
	// Degraded counts components that fell back to the greedy result
	// (node-count cap or exhausted expansion budget).
	Degraded int
}

// Gap is the total profit left on the table by the greedy scheme.
func (r *OracleReport) Gap() float64 { return r.OptimalProfit - r.GreedyProfit }

// Err returns a ClassDegraded error if any component fell back to the
// greedy result, nil otherwise. The partition is still valid and never
// worse than the greedy scheme — the error only reports that optimality
// is not certified.
func (r *OracleReport) Err() error {
	if r == nil || r.Degraded == 0 {
		return nil
	}
	return fperr.New(fperr.ClassDegraded,
		"partition oracle degraded on %s: %d component(s) fell back to the greedy result",
		r.Fn, r.Degraded)
}

// OracleMemo caches solved components across functions by structural
// signature (member kinds/classes/counts, internal edges, eligibility
// cut-set, cost parameters). Compiling a module re-solves many isomorphic
// components — induction variables, loop counters, accumulators lowered
// identically — and a hit replays the stored optimum without any search.
// A nil memo disables caching. Not safe for concurrent use.
type OracleMemo struct {
	entries map[string]memoEntry
	hits    int
}

type memoEntry struct {
	localFPa []int // indices into the component's ID-sorted member list
	profit   float64
	exact    bool
}

// NewOracleMemo returns an empty component cache.
func NewOracleMemo() *OracleMemo { return &OracleMemo{entries: make(map[string]memoEntry)} }

// Hits reports how many components were answered from the cache.
func (m *OracleMemo) Hits() int {
	if m == nil {
		return 0
	}
	return m.hits
}

// OptimalPartition computes the exact §6.1-optimal partition of g under
// params, within limits (zero limits select DefaultOracleLimits). The
// returned partition uses scheme name "optimal" and carries a full audit
// trail; the report records the per-component greedy-vs-optimal gaps.
// memo may be nil.
func OptimalPartition(g *Graph, params CostParams, limits OracleLimits, memo *OracleMemo) (*Partition, *OracleReport) {
	limits = limits.withDefaults()
	cm := newCostModel(g, params)
	adv := advancedPartition(cm)

	comp := undirectedComponents(g)
	eligible := oracleEligible(g)

	// Collect partitionable members per component, in node order.
	nComp := 0
	for _, c := range comp {
		if c >= nComp {
			nComp = c + 1
		}
	}
	members := make([][]NodeID, nComp)
	for _, n := range g.Nodes {
		if c := comp[n.ID]; c >= 0 {
			members[c] = append(members[c], n.ID)
		}
	}

	report := &OracleReport{Fn: g.Fn.Name}
	budget := limits.MaxExpansions
	inFPa := make([]bool, len(g.Nodes))   // final assignment, filled per component
	scratch := make([]bool, len(g.Nodes)) // per-component pricing scratch

	for c := 0; c < nComp; c++ {
		flex := 0
		for _, id := range members[c] {
			if eligible[id] {
				flex++
			}
		}
		if flex == 0 {
			continue // nothing offloadable; greedy has it all-INT too
		}
		pricer := newCompPricer(cm, members[c])

		// Greedy profit: the advanced assignment restricted to this
		// component, priced through the same path as the oracle.
		var advFPa []NodeID
		for _, id := range members[c] {
			if adv.Assign[id] == SubFPa {
				scratch[id] = true
				advFPa = append(advFPa, id)
			}
		}
		greedy := pricer.price(scratch).Profit()
		for _, id := range advFPa {
			scratch[id] = false
		}

		gap := ComponentGap{
			MinNode:      members[c][0],
			FlexNodes:    flex,
			GreedyProfit: greedy,
		}

		sol := solveComponent(cm, pricer, members[c], eligible, scratch, limits, &budget, memo, greedy, advFPa)
		gap.OptimalProfit = sol.profit
		gap.Exact = sol.exact
		gap.Expansions = sol.expansions
		gap.Reason = sol.reason
		if !sol.exact {
			report.Degraded++
		}
		for _, id := range sol.fpa {
			inFPa[id] = true
		}
		for _, id := range members[c] {
			scratch[id] = false
		}
		report.Expansions += sol.expansions
		report.GreedyProfit += gap.GreedyProfit
		report.OptimalProfit += gap.OptimalProfit
		report.Components = append(report.Components, gap)
	}
	sort.Slice(report.Components, func(i, j int) bool {
		return report.Components[i].MinNode < report.Components[j].MinNode
	})
	for i := range report.Components {
		report.Components[i].Component = i
	}

	return assembleOptimal(cm, inFPa, report), report
}

// oracleEligible marks the flexible nodes that may ever execute in FPa:
// the complement, within the flexible nodes, of the backward closure of
// "has a pinned child that is not a call/return". This is the oracle's
// analogue of the advanced scheme's hard-root INT slices.
func oracleEligible(g *Graph) []bool {
	eligible := make([]bool, len(g.Nodes))
	var stack []NodeID
	for _, n := range g.Nodes {
		if n.Class != ClassFlex {
			continue
		}
		eligible[n.ID] = true
		for _, c := range n.Children {
			cn := g.Nodes[c]
			if cn.Class == ClassPinInt && cn.Kind != KindCall && cn.Kind != KindRet {
				eligible[n.ID] = false
				stack = append(stack, n.ID)
				break
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Nodes[v].Parents {
			if eligible[p] {
				eligible[p] = false
				stack = append(stack, p)
			}
		}
	}
	return eligible
}

// solution is the outcome of solving one component.
type solution struct {
	fpa        []NodeID
	profit     float64
	exact      bool
	expansions int64
	reason     string
}

// solveComponent finds the best legal FPa subset of one component. The
// incumbent starts at max(greedy, empty), so the result never falls below
// the advanced scheme even when a cap degrades the search.
func solveComponent(cm *costModel, pricer *compPricer, members []NodeID, eligible []bool,
	scratch []bool, limits OracleLimits, budget *int64, memo *OracleMemo,
	greedy float64, advFPa []NodeID) solution {

	key := ""
	if memo != nil {
		key = componentSignature(cm, members, eligible)
		if e, ok := memo.entries[key]; ok {
			// Guard the dominance invariant: a budget-capped cached result
			// could in principle trail this instance's greedy profit.
			if e.exact || e.profit >= greedy {
				memo.hits++
				fpa := make([]NodeID, len(e.localFPa))
				for i, li := range e.localFPa {
					fpa[i] = members[li]
				}
				return solution{fpa: fpa, profit: e.profit, exact: e.exact, reason: "memo"}
			}
		}
	}

	sol := runBB(cm, pricer, members, eligible, scratch, limits, budget, greedy, advFPa)

	if memo != nil {
		local := make(map[NodeID]int, len(members))
		for i, id := range members {
			local[id] = i
		}
		e := memoEntry{profit: sol.profit, exact: sol.exact}
		for _, id := range sol.fpa {
			e.localFPa = append(e.localFPa, local[id])
		}
		memo.entries[key] = e
	}
	return sol
}

// componentSignature canonically encodes a component's partitioning
// subproblem: cost parameters, member kind/class/count/actual-arg bits,
// the eligibility cut-set, and the internal edges in local indices.
// Members are ID-sorted, so structurally identical lowerings of the same
// idiom map to the same key.
func componentSignature(cm *costModel, members []NodeID, eligible []bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "p%x,%x", math.Float64bits(cm.params.OCopy), math.Float64bits(cm.params.ODupl))
	local := make(map[NodeID]int, len(members))
	for i, id := range members {
		local[id] = i
	}
	for i, id := range members {
		n := cm.g.Nodes[id]
		fmt.Fprintf(&sb, ";%d:k%dc%dw%x", i, n.Kind, n.Class, math.Float64bits(n.Count))
		if n.IsActualArg {
			sb.WriteByte('a')
		}
		if eligible[id] {
			sb.WriteByte('e')
		}
		for _, ch := range n.Children {
			if j, ok := local[ch]; ok {
				fmt.Fprintf(&sb, ">%d", j)
			}
		}
	}
	return sb.String()
}

// bbState is one component's branch-and-bound search.
type bbState struct {
	cm      *costModel
	pricer  *compPricer
	scratch []bool

	vars  []NodeID // eligible nodes, branch order: count desc, ID asc
	index []int    // NodeID -> var index, -1 otherwise (full-graph slice)

	// flexChildren/flexParents are adjacency among vars (var indices).
	flexChildren [][]int
	flexParents  [][]int

	// rootCands are potential mandatory-transfer roots: partitionable
	// parents of vars. varChildren[i] lists root candidate i's children
	// that are vars.
	rootCands   []NodeID
	varChildren [][]int
	minCoef     []float64 // admissible per-root transfer cost floor

	term  []float64 // per var: count − (actual-arg ? copyCost : 0)
	bonus []float64 // per var: max(0, term)

	status []uint8 // stUndec / stIn / stOut per var
	trail  []int   // var indices whose status was set, for undo

	best       float64
	bestSet    []bool // per var
	expansions int64
	budget     *int64
	exhausted  bool
}

const (
	stUndec = iota
	stIn
	stOut
)

// runBB performs the exact search over one component.
func runBB(cm *costModel, pricer *compPricer, members []NodeID, eligible []bool,
	scratch []bool, limits OracleLimits, budget *int64, greedy float64, advFPa []NodeID) solution {

	var vars []NodeID
	for _, id := range members {
		if eligible[id] {
			vars = append(vars, id)
		}
	}
	capped := len(vars) > limits.MaxFlexNodes
	if capped || *budget <= 0 {
		reason := fmt.Sprintf("capped: %d eligible nodes exceed the %d-node limit; greedy result kept",
			len(vars), limits.MaxFlexNodes)
		if !capped {
			reason = "expansion budget exhausted before the search started; greedy result kept"
		}
		return solution{fpa: advFPa, profit: greedy, reason: reason}
	}

	b := newBBState(cm, pricer, scratch, vars, budget)

	// Incumbent: the better of the empty assignment and the greedy result
	// (its assignment is recovered below if the search never beats it).
	// Strict-improvement updates keep the search deterministic.
	b.best = math.Max(0, greedy)
	b.dfs(0)

	exact := !b.exhausted
	reason := "exact"
	if !exact {
		reason = fmt.Sprintf("expansion budget exhausted after %d expansions; best incumbent kept", b.expansions)
	}

	// Materialize the winning assignment. If the search never beat the
	// greedy profit, return the greedy assignment itself (profit equal or
	// better by construction of the incumbent).
	if b.best <= greedy {
		return solution{fpa: advFPa, profit: greedy, exact: exact, expansions: b.expansions, reason: reason}
	}
	var fpa []NodeID
	for i, id := range b.vars {
		if b.bestSet[i] {
			fpa = append(fpa, id)
		}
	}
	sort.Slice(fpa, func(i, j int) bool { return fpa[i] < fpa[j] })
	return solution{fpa: fpa, profit: b.best, exact: exact, expansions: b.expansions, reason: reason}
}

// newBBState builds the search state over the given eligible nodes:
// branch order (count desc, ID asc), adjacency among variables, the
// mandatory-transfer root candidates, and the per-variable bound terms.
func newBBState(cm *costModel, pricer *compPricer, scratch []bool, vars []NodeID, budget *int64) *bbState {
	b := &bbState{
		cm: cm, pricer: pricer, scratch: scratch,
		vars: vars, budget: budget,
	}
	sort.Slice(b.vars, func(i, j int) bool {
		ni, nj := cm.g.Nodes[b.vars[i]], cm.g.Nodes[b.vars[j]]
		if ni.Count != nj.Count {
			return ni.Count > nj.Count
		}
		return ni.ID < nj.ID
	})
	b.index = make([]int, len(cm.g.Nodes))
	for i := range b.index {
		b.index[i] = -1
	}
	for i, id := range b.vars {
		b.index[id] = i
	}
	n := len(b.vars)
	b.flexChildren = make([][]int, n)
	b.flexParents = make([][]int, n)
	b.term = make([]float64, n)
	b.bonus = make([]float64, n)
	b.status = make([]uint8, n)
	b.bestSet = make([]bool, n)
	rootIdx := make(map[NodeID]int)
	for i, id := range b.vars {
		nd := cm.g.Nodes[id]
		b.term[i] = nd.Count
		if nd.IsActualArg {
			b.term[i] -= cm.copyCost[id]
		}
		b.bonus[i] = math.Max(0, b.term[i])
		for _, ch := range nd.Children {
			if j := b.index[ch]; j >= 0 {
				b.flexChildren[i] = append(b.flexChildren[i], j)
			}
		}
		for _, p := range nd.Parents {
			if j := b.index[p]; j >= 0 {
				b.flexParents[i] = append(b.flexParents[i], j)
			}
			if !cm.partitionable(p) {
				continue
			}
			ri, ok := rootIdx[p]
			if !ok {
				ri = len(b.rootCands)
				rootIdx[p] = ri
				b.rootCands = append(b.rootCands, p)
				b.varChildren = append(b.varChildren, nil)
				coef := cm.copyCost[p]
				if cm.duplicable(p) {
					coef = math.Min(coef, cm.params.ODupl*cm.count(p))
				}
				b.minCoef = append(b.minCoef, coef)
			}
			b.varChildren[ri] = append(b.varChildren[ri], i)
		}
	}
	return b
}

// dfs explores assignments for vars[pos:] given the propagated statuses.
func (b *bbState) dfs(pos int) {
	if b.exhausted {
		return
	}
	for pos < len(b.vars) && b.status[pos] != stUndec {
		pos++
	}
	if pos == len(b.vars) {
		b.evalLeaf()
		return
	}
	if b.upperBound() <= b.best {
		return
	}
	b.expansions++
	*b.budget -= 1
	if *b.budget <= 0 {
		b.exhausted = true
		return
	}

	mark := len(b.trail)
	if b.propagate(pos, stIn) {
		b.dfs(pos + 1)
	}
	b.undo(mark)
	if b.exhausted {
		return
	}
	mark = len(b.trail)
	if b.propagate(pos, stOut) {
		b.dfs(pos + 1)
	}
	b.undo(mark)
}

// propagate sets vars[i] to val and closes over the legality constraints:
// in ⇒ all flexible children in; out ⇒ all eligible parents out. Returns
// false on contradiction (caller undoes to its mark).
func (b *bbState) propagate(i int, val uint8) bool {
	b.status[i] = val
	b.trail = append(b.trail, i)
	stack := []int{i}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.status[v] == stIn {
			for _, c := range b.flexChildren[v] {
				switch b.status[c] {
				case stOut:
					return false
				case stUndec:
					b.status[c] = stIn
					b.trail = append(b.trail, c)
					stack = append(stack, c)
				}
			}
		} else {
			for _, p := range b.flexParents[v] {
				switch b.status[p] {
				case stIn:
					return false
				case stUndec:
					b.status[p] = stOut
					b.trail = append(b.trail, p)
					stack = append(stack, p)
				}
			}
		}
	}
	return true
}

func (b *bbState) undo(mark int) {
	for len(b.trail) > mark {
		i := b.trail[len(b.trail)-1]
		b.trail = b.trail[:len(b.trail)-1]
		b.status[i] = stUndec
	}
}

// upperBound is an admissible bound on the profit of any completion of the
// current partial assignment:
//
//	Σ_In (count − actArgCost) + Σ_Undec max(0, count − actArgCost)
//	  − Σ_{u definitely-INT with an In child} min(copy_cost(u), o_dupl·n(u))
//
// The In term is exact; every undecided node contributes at most its bonus
// (joining FPa adds count − actArgCost minus non-negative transfer costs;
// staying INT adds at most 0); and every definitely-INT parent of an In
// node is in the transfer set of every completion, each transfer member
// costing at least min(copy, o_dupl·n) — so subtracting those is safe.
func (b *bbState) upperBound() float64 {
	ub := 0.0
	for i := range b.vars {
		switch b.status[i] {
		case stIn:
			ub += b.term[i]
		case stUndec:
			ub += b.bonus[i]
		}
	}
	for ri, u := range b.rootCands {
		if j := b.index[u]; j >= 0 && b.status[j] != stOut {
			continue // eligible and not yet decided-out: not definitely INT
		}
		for _, ci := range b.varChildren[ri] {
			if b.status[ci] == stIn {
				ub -= b.minCoef[ri]
				break
			}
		}
	}
	return ub
}

// evalLeaf prices the fully-decided assignment and updates the incumbent
// on strict improvement.
func (b *bbState) evalLeaf() {
	for i, id := range b.vars {
		b.scratch[id] = b.status[i] == stIn
	}
	profit := b.pricer.price(b.scratch).Profit()
	for _, id := range b.vars {
		b.scratch[id] = false
	}
	if profit > b.best {
		b.best = profit
		for i := range b.vars {
			b.bestSet[i] = b.status[i] == stIn
		}
	}
}

// assembleOptimal packages the oracle assignment as a Partition with
// scheme "optimal", transfer sets from the shared cost model, and a full
// audit trail (one record per reported component, degradations in Notes).
func assembleOptimal(cm *costModel, inFPa []bool, report *OracleReport) *Partition {
	g := cm.g
	p := newPartition(g, "optimal")
	inINT := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		if inFPa[n.ID] {
			p.Assign[n.ID] = SubFPa
		} else {
			p.Assign[n.ID] = SubINT
			inINT[n.ID] = true
		}
	}
	copies, dups := cm.transferSet(inINT)
	p.CopyNodes = copies
	p.DupNodes = dups
	for _, n := range g.Nodes {
		if n.Class != ClassFixedFP && inFPa[n.ID] && n.IsActualArg {
			p.OutCopyNodes[n.ID] = true
		}
	}

	audit := &Audit{Fn: g.Fn.Name, Scheme: "optimal"}
	comp := undirectedComponents(g)
	members := make(map[int][]NodeID)
	for _, n := range g.Nodes {
		if c := comp[n.ID]; c >= 0 {
			members[c] = append(members[c], n.ID)
		}
	}
	scratch := make([]bool, len(g.Nodes))
	for _, gp := range report.Components {
		ms := members[comp[gp.MinNode]]
		pricer := newCompPricer(cm, ms)
		fpaCount := 0
		for _, id := range ms {
			scratch[id] = inFPa[id]
			if inFPa[id] {
				fpaCount++
			}
		}
		price := pricer.price(scratch)
		for _, id := range ms {
			scratch[id] = false
		}
		d := ComponentDecision{
			MinNode:   gp.MinNode,
			Nodes:     fpaCount,
			Transfers: price.Transfers,
			Weight:    price.Benefit,
			Benefit:   price.Benefit,
			Overhead:  price.Overhead,
			Profit:    price.Profit(),
			Accepted:  fpaCount > 0,
		}
		switch {
		case !gp.Exact:
			d.Reason = "oracle degraded: " + gp.Reason
		case fpaCount > 0:
			d.Reason = fmt.Sprintf("optimal: exact search (gap over greedy %+.1f)", gp.Gap())
		default:
			d.Reason = "optimal: no profitable FPa subset exists"
		}
		audit.Components = append(audit.Components, d)
	}
	audit.Components = sortComponents(audit.Components)
	if report.Degraded > 0 {
		audit.Notes = append(audit.Notes, fmt.Sprintf(
			"oracle degraded: %d component(s) fell back to the greedy result", report.Degraded))
	}
	if cm.params.Provenance != "" {
		audit.Notes = append(audit.Notes, "cost model: "+cm.params.Provenance)
	}
	p.Audit = audit
	attachUnpins(p)
	return p
}
