package core

import (
	"fmt"
	"sort"
	"strings"
)

// VerifyPartition is the static partition verifier: an independent check of
// the paper's partitioning invariants, run after every scheme (and, in the
// degradation ladder, after any partition-mutating hook) as a safety net
// against partitioner bugs. It deliberately re-derives everything from the
// graph rather than trusting the partitioner's own bookkeeping, and is
// stricter than Partition.Validate, which partitioner authors use as a
// structural self-check during construction.
//
// Invariants checked:
//
//  1. Placement: no load/store address node, call node, return node, or any
//     other pinned-INT node (integer mul/div, parameter dummy, frame
//     address) is assigned to FPa (§5: addresses must form in the integer
//     file; §6.4: calling conventions bind arguments and return values to
//     integer registers). Exception: an address node the static analysis
//     unpinned may sit in FPa, but only with a recorded justification in
//     Graph.Unpinned — and every Unpinned entry must itself be hygienic
//     (an address node, built flexible, with a non-empty reason).
//  2. Copy discipline: every cross-partition register edge is carried by an
//     explicit transfer — an INT-side producer feeding an FPa consumer
//     carries an INT→FPa copy or duplicate; an FPa-side producer feeding an
//     INT consumer carries an FPa→INT copy.
//  3. FPa→INT copies appear only at actual-parameter positions: producers
//     of call arguments and return values (§6.4) — never as a general
//     escape hatch — and every such copy feeds only call/ret consumers.
//  4. Transfer hygiene: copies/duplicates attach only to INT-side
//     definitions, out-copies only to FPa-side definitions, and FixedFP
//     nodes carry no partition state at all.
//  5. Scheme discipline: the basic scheme moves whole components, so a
//     basic partition must have zero copies, duplicates, and out-copies,
//     and no cross-partition edges whatsoever.
//
// The returned error (nil if the partition is sound) lists every violation
// in deterministic node order.
func VerifyPartition(p *Partition) error {
	if p == nil {
		return nil // conventional compilation: nothing to verify
	}
	v := p.Violations()
	if len(v) == 0 {
		return nil
	}
	const maxShown = 8
	shown := v
	if len(shown) > maxShown {
		shown = shown[:maxShown]
	}
	msg := strings.Join(shown, "; ")
	if len(v) > maxShown {
		msg += fmt.Sprintf("; ... and %d more", len(v)-maxShown)
	}
	return fmt.Errorf("partition verifier: %s (%s): %d violation(s): %s",
		p.G.Fn.Name, p.Scheme, len(v), msg)
}

// Violations returns every paper-invariant violation in the partition, in
// deterministic order (by node ID, then by check). Empty means sound.
func (p *Partition) Violations() []string {
	var out []string
	g := p.G
	bad := func(id NodeID, format string, args ...any) {
		out = append(out, fmt.Sprintf("n%d(%s): %s", id, g.Nodes[id].Kind, fmt.Sprintf(format, args...)))
	}

	if len(p.Assign) != len(g.Nodes) {
		return []string{fmt.Sprintf("assignment covers %d of %d nodes", len(p.Assign), len(g.Nodes))}
	}

	basic := p.Scheme == "basic"
	for _, n := range g.Nodes {
		id := n.ID
		if n.Class == ClassFixedFP {
			// 4. FixedFP nodes live outside the partitioning problem.
			if p.CopyNodes[id] || p.DupNodes[id] || p.OutCopyNodes[id] {
				bad(id, "fixed-FP node carries partition transfer state")
			}
			continue
		}
		inFPa := p.Assign[id] == SubFPa

		// 1. Placement constraints.
		if inFPa {
			switch {
			case n.Kind == KindLoadAddr || n.Kind == KindStoreAddr:
				if g.Unpinned[id] == "" {
					bad(id, "load/store address node assigned to FPa without an unpin justification")
				}
			case n.Kind == KindCall:
				bad(id, "call node assigned to FPa")
			case n.Kind == KindRet:
				bad(id, "return node assigned to FPa")
			case n.Class == ClassPinInt:
				bad(id, "pinned-INT node assigned to FPa")
			}
		}

		// 4. Transfer hygiene.
		if p.CopyNodes[id] && inFPa {
			bad(id, "INT→FPa copy attached to an FPa-side definition")
		}
		if p.DupNodes[id] && inFPa {
			bad(id, "duplicate attached to an FPa-side definition")
		}
		if p.OutCopyNodes[id] && !inFPa {
			bad(id, "FPa→INT copy attached to an INT-side definition")
		}

		// 3. Out-copies only at actual-parameter positions.
		if p.OutCopyNodes[id] && !n.IsActualArg {
			bad(id, "FPa→INT copy at a non-actual-parameter node")
		}

		// 2. Copy discipline on every cross-partition edge.
		for _, c := range n.Children {
			child := g.Nodes[c]
			if child.Class == ClassFixedFP {
				continue
			}
			childFPa := p.Assign[c] == SubFPa
			switch {
			case !inFPa && childFPa:
				if !p.CopyNodes[id] && !p.DupNodes[id] {
					bad(id, "INT value consumed by FPa node n%d without a copy or duplicate", c)
				}
				if basic {
					bad(id, "cross-partition edge to n%d under the basic scheme", c)
				}
			case inFPa && !childFPa:
				if !p.OutCopyNodes[id] {
					bad(id, "FPa value consumed by INT node n%d without an FPa→INT copy", c)
				} else if child.Kind != KindCall && child.Kind != KindRet {
					bad(id, "FPa→INT copy consumed by n%d(%s), not a call or return", c, child.Kind)
				}
				if basic {
					bad(id, "cross-partition edge to n%d under the basic scheme", c)
				}
			}
		}
	}

	// 1b. Unpin hygiene: every recorded unpin must name an address node that
	// was actually built flexible, and must carry a non-empty justification.
	unpinIDs := make([]NodeID, 0, len(g.Unpinned))
	for id := range g.Unpinned {
		unpinIDs = append(unpinIDs, id)
	}
	sort.Slice(unpinIDs, func(i, j int) bool { return unpinIDs[i] < unpinIDs[j] })
	for _, id := range unpinIDs {
		if int(id) >= len(g.Nodes) {
			out = append(out, fmt.Sprintf("n%d: unpin record for a node that does not exist", id))
			continue
		}
		n := g.Nodes[id]
		if n.Kind != KindLoadAddr && n.Kind != KindStoreAddr {
			bad(id, "unpin record on a non-address node")
		}
		if n.Class != ClassFlex {
			bad(id, "unpinned address node not built flexible")
		}
		if g.Unpinned[id] == "" {
			bad(id, "unpin record with an empty justification")
		}
	}

	// 5. Basic-scheme discipline: no transfer machinery at all.
	if basic {
		for _, set := range []struct {
			name  string
			nodes map[NodeID]bool
		}{
			{"INT→FPa copy", p.CopyNodes},
			{"duplicate", p.DupNodes},
			{"FPa→INT copy", p.OutCopyNodes},
		} {
			ids := make([]NodeID, 0, len(set.nodes))
			for id := range set.nodes {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				bad(id, "%s present under the basic scheme", set.name)
			}
		}
	}
	return out
}
