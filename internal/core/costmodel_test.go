package core_test

import (
	"testing"

	"fpint/internal/core"
)

// TestDuplicationPreferredForCheapChains checks the §6.2 heuristic: a node
// whose backward slice is cheap to replicate (constants, single adds) is
// duplicated rather than copied, because o_dupl < o_copy and the duplicate
// avoids per-iteration communication.
func TestDuplicationPreferredForCheapChains(t *testing.T) {
	// The loop induction variable's update (i = i + 1) has a cheap backward
	// slice; offloading the comparison slice should duplicate it (the
	// paper's Figure 6) or copy it (Figure 5) depending on the constants.
	src := `
int a[100];
int total;
int main() {
	for (int i = 0; i < 100; i++) total += a[i];
	return total;
}
`
	mod, prof := build(t, src)
	fn := mod.Lookup("main")
	g := core.BuildGraph(fn, prof)

	// With a very expensive copy, duplication must win somewhere.
	p := core.AdvancedPartition(g, core.CostParams{OCopy: 50, ODupl: 1.1})
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(p.DupNodes) == 0 && len(p.CopyNodes) > 0 {
		t.Errorf("expensive copies chosen over cheap duplication: copies=%d dups=%d",
			len(p.CopyNodes), len(p.DupNodes))
	}
}

// TestParamsNeverDuplicated: a formal parameter only materializes in an
// integer register, so the transfer for a parameter must be a copy.
func TestParamsNeverDuplicated(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	for (int i = 0; i < 50; i++) s ^= (s << 1) + n;
	return s;
}
int main() { return f(7) & 65535; }
`
	mod, prof := build(t, src)
	fn := mod.Lookup("f")
	g := core.BuildGraph(fn, prof)
	p := core.AdvancedPartition(g, core.CostParams{OCopy: 4, ODupl: 1.1})
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	for id := range p.DupNodes {
		if g.Nodes[id].Kind == core.KindParam {
			t.Errorf("parameter node n%d duplicated", id)
		}
	}
}

// TestLoadValueDuplicationIsReload: duplicating a load value must not drag
// its address computation into FPa (backward slices stop at load values).
func TestLoadValueDuplication(t *testing.T) {
	src := `
int a[64];
int out[64];
int main() {
	int s = 0;
	for (int i = 0; i < 64; i++) {
		int v = a[i];
		out[i] = v + 1;   // store-value use of v
		if (v > 32) s++;  // branch use of v
	}
	return s;
}
`
	mod, prof := build(t, src)
	fn := mod.Lookup("main")
	g := core.BuildGraph(fn, prof)
	p := core.AdvancedPartition(g, core.DefaultCostParams())
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// All load/store address nodes stay INT regardless of any transfers.
	for _, n := range g.Nodes {
		if (n.Kind == core.KindLoadAddr || n.Kind == core.KindStoreAddr) && p.InFPa(n.ID) {
			t.Errorf("address node n%d in FPa", n.ID)
		}
	}
}

// TestOutCopiesOnlyFeedCallsAndReturns pins the §6.4 restriction: FPa→INT
// copies exist only for calling-convention positions.
func TestOutCopiesOnlyFeedCallsAndReturns(t *testing.T) {
	src := `
int sink;
int helper(int v) { sink += v; return v ^ 3; }
int main() {
	int s = 0;
	for (int i = 0; i < 40; i++) {
		int x = (i ^ 5) + (i << 2); // cheap FPa-able computation
		s += helper(x & 255);
	}
	return s & 65535;
}
`
	mod, prof := build(t, src)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		p := core.AdvancedPartition(g, core.DefaultCostParams())
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", fn.Name, err)
		}
		for id := range p.OutCopyNodes {
			if !g.Nodes[id].IsActualArg {
				t.Errorf("%s: out-copy on non-argument node n%d", fn.Name, id)
			}
		}
	}
}

// TestProbabilisticEstimateUsedWithoutProfile: functions missing from the
// profile fall back to p_B * 5^d_B; deeper loops must get larger counts.
func TestProbabilisticEstimate(t *testing.T) {
	src := `
int a[16];
int cold(int n) {
	int s = 0;
	for (int i = 0; i < n; i++)
		for (int j = 0; j < n; j++)
			s += i*j;
	return s;
}
int main() { return a[0]; }
`
	mod, _ := build(t, src)
	fn := mod.Lookup("cold")
	g := core.BuildGraph(fn, nil) // no profile at all
	var depth0, depth2 float64
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		switch n.Instr.Blk.LoopDepth {
		case 0:
			if n.Count > depth0 {
				depth0 = n.Count
			}
		case 2:
			if n.Count > depth2 {
				depth2 = n.Count
			}
		}
	}
	if depth2 <= depth0 {
		t.Errorf("nested-loop estimate %v not larger than straight-line %v", depth2, depth0)
	}
}

// TestBasicSchemeRespectsConditions verifies §5.1's partitioning conditions
// directly: no FPa node may have an INT node in its backward or forward
// slice.
func TestBasicSchemeConditions(t *testing.T) {
	mod, prof := build(t, gccFragment)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		p := core.BasicPartition(g)
		for _, n := range g.Nodes {
			if !p.InFPa(n.ID) {
				continue
			}
			for v := range g.BackwardSlice(n.ID) {
				if g.Nodes[v].Class != core.ClassFixedFP && !p.InFPa(v) {
					t.Fatalf("%s: FPa node n%d has INT ancestor n%d", fn.Name, n.ID, v)
				}
			}
			for v := range g.ForwardSlice(n.ID) {
				if g.Nodes[v].Class != core.ClassFixedFP && !p.InFPa(v) {
					t.Fatalf("%s: FPa node n%d has INT descendant n%d", fn.Name, n.ID, v)
				}
			}
		}
	}
}
