// Package core implements the paper's primary contribution: the register
// dependence graph (RDG) and the two code-partitioning schemes (basic and
// advanced) that offload integer computation from the INT subsystem to the
// augmented floating-point subsystem (FPa).
//
// Terminology follows the paper (§3): the RDG has a node per static
// instruction, with load and store instructions split into an address node
// and a value node. There is no edge between the two halves of a split
// node, which is what makes backward slices stop at load values and forward
// slices stop at addresses.
package core

import (
	"fmt"
	"math"

	"fpint/internal/dataflow"
	"fpint/internal/interp"
	"fpint/internal/ir"
)

// NodeID indexes nodes within one function's RDG.
type NodeID int32

// NodeKind distinguishes the roles RDG nodes play.
type NodeKind uint8

// Node kinds.
const (
	KindPlain     NodeKind = iota // ALU op, const, copy, address materialization
	KindLoadAddr                  // address half of a load
	KindLoadVal                   // value half of a load
	KindStoreAddr                 // address half of a store
	KindStoreVal                  // value half of a store
	KindBranch                    // conditional branch
	KindJump                      // unconditional jump (no operands)
	KindCall                      // call site (int args in, int ret out)
	KindRet                       // return (int return value use)
	KindParam                     // dummy node for a formal parameter (§6.4)
)

var kindNames = [...]string{
	KindPlain: "plain", KindLoadAddr: "load-addr", KindLoadVal: "load-val",
	KindStoreAddr: "store-addr", KindStoreVal: "store-val",
	KindBranch: "branch", KindJump: "jump", KindCall: "call",
	KindRet: "ret", KindParam: "param",
}

// String returns the kind name.
func (k NodeKind) String() string { return kindNames[k] }

// Class constrains where a node may execute.
type Class uint8

// Placement classes.
const (
	// ClassFlex nodes may be assigned to INT or FPa.
	ClassFlex Class = iota
	// ClassPinInt nodes must execute in the INT subsystem: load/store
	// address halves, integer multiply/divide/remainder (not supported by
	// FPa), calls, integer returns, and parameter dummies.
	ClassPinInt
	// ClassFixedFP nodes are floating-point operations that always execute
	// in the FP subsystem regardless of partitioning; they never join RDG
	// components (their values cross register files through the existing FP
	// datapaths).
	ClassFixedFP
)

// Node is one RDG node.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Class Class

	// Instr is the underlying IR instruction (nil for KindParam nodes).
	Instr *ir.Instr
	// ParamIdx is valid for KindParam nodes.
	ParamIdx int

	// Parents and Children are the I64 register def-use edges among
	// partitionable (non-FixedFP) nodes. Edges are deduplicated.
	Parents  []NodeID
	Children []NodeID

	// Count is the estimated execution count of the node (profile-derived
	// or the probabilistic p_B * 5^d_B estimate).
	Count float64

	// IsActualArg marks nodes whose integer value flows directly into a
	// call argument or a return value — the positions that calling
	// conventions force into integer registers (§6.4).
	IsActualArg bool
}

// AddrOracle lets a static analysis vouch for load/store addresses. When
// SafeAddr returns ok for an instruction ID, the partitioner may treat the
// address half of that load/store as flexible instead of pinned to INT: the
// analysis has proven the address a well-behaved access to a known object,
// so computing it on the FPa side (and materializing it into an integer
// register at the access) cannot change what the access touches. The reason
// string is recorded as the audit-trail justification and re-checked by the
// partition verifier.
type AddrOracle interface {
	SafeAddr(instrID int) (reason string, ok bool)
}

// Graph is the RDG of one function.
type Graph struct {
	Fn    *ir.Func
	Nodes []*Node

	// Unpinned records the oracle justification for every load/store
	// address node that was built ClassFlex instead of ClassPinInt. The
	// partition verifier refuses FPa address nodes without an entry here.
	Unpinned map[NodeID]string

	// Node lookup per instruction ID.
	mainNode  map[int]NodeID // Plain/Branch/Jump/Call/Ret nodes
	loadAddr  map[int]NodeID
	loadVal   map[int]NodeID
	storeAddr map[int]NodeID
	storeVal  map[int]NodeID
	paramNode []NodeID // indexed by parameter position

	rd *dataflow.ReachingDefs
}

// NodeForInstr returns the main node of an instruction (not valid for
// loads/stores, which are split).
func (g *Graph) NodeForInstr(id int) (NodeID, bool) {
	n, ok := g.mainNode[id]
	return n, ok
}

// LoadValNode returns the value node of load instruction id.
func (g *Graph) LoadValNode(id int) (NodeID, bool) { n, ok := g.loadVal[id]; return n, ok }

// LoadAddrNode returns the address node of load instruction id.
func (g *Graph) LoadAddrNode(id int) (NodeID, bool) { n, ok := g.loadAddr[id]; return n, ok }

// StoreValNode returns the value node of store instruction id.
func (g *Graph) StoreValNode(id int) (NodeID, bool) { n, ok := g.storeVal[id]; return n, ok }

// StoreAddrNode returns the address node of store instruction id.
func (g *Graph) StoreAddrNode(id int) (NodeID, bool) { n, ok := g.storeAddr[id]; return n, ok }

// ParamNode returns the dummy node for parameter i.
func (g *Graph) ParamNode(i int) NodeID { return g.paramNode[i] }

// CountOf returns the execution-count estimate used by the cost model.
func (g *Graph) CountOf(id NodeID) float64 { return g.Nodes[id].Count }

// BuildGraph constructs the RDG for fn. The profile may be nil; functions
// not covered by it get the probabilistic estimate p_B * 5^d_B, with both
// branch directions assumed equally likely (§6.1).
func BuildGraph(fn *ir.Func, profile *interp.Profile) *Graph {
	return BuildGraphWithOracle(fn, profile, nil)
}

// BuildGraphWithOracle constructs the RDG for fn, consulting oracle (which
// may be nil) to unpin load/store address nodes the analysis proved safe.
// Every unpin is recorded in Graph.Unpinned with its justification.
func BuildGraphWithOracle(fn *ir.Func, profile *interp.Profile, oracle AddrOracle) *Graph {
	fn.Renumber()
	g := &Graph{
		Fn:        fn,
		Unpinned:  make(map[NodeID]string),
		mainNode:  make(map[int]NodeID),
		loadAddr:  make(map[int]NodeID),
		loadVal:   make(map[int]NodeID),
		storeAddr: make(map[int]NodeID),
		storeVal:  make(map[int]NodeID),
	}
	g.rd = dataflow.ComputeReachingDefs(fn)
	counts := blockCounts(fn, profile)

	newNode := func(kind NodeKind, class Class, in *ir.Instr, count float64) NodeID {
		id := NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, &Node{ID: id, Kind: kind, Class: class, Instr: in, Count: count})
		return id
	}

	// addrClass picks the class of a load/store address node: pinned to INT
	// by default (the integer pipeline owns address computation), flexible
	// when the oracle proves the access safe.
	addrClass := func(in *ir.Instr) (Class, string, bool) {
		if oracle != nil {
			if reason, ok := oracle.SafeAddr(in.ID); ok {
				return ClassFlex, reason, true
			}
		}
		return ClassPinInt, "", false
	}

	// Parameter dummy nodes, pre-assigned to INT (§6.4). Float parameters
	// arrive in FP registers and are FixedFP.
	entryCount := counts[fn.Entry]
	for i, p := range fn.Params {
		class := ClassPinInt
		if fn.VRegType(p) == ir.F64 {
			class = ClassFixedFP
		}
		id := newNode(KindParam, class, nil, entryCount)
		g.Nodes[id].ParamIdx = i
		g.paramNode = append(g.paramNode, id)
	}

	// Instruction nodes.
	for _, b := range fn.Blocks {
		cnt := counts[b]
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				aClass, reason, unpinned := addrClass(in)
				aNode := newNode(KindLoadAddr, aClass, in, cnt)
				g.loadAddr[in.ID] = aNode
				if unpinned {
					g.Unpinned[aNode] = reason
				}
				valClass := ClassFlex
				if in.IsFloat {
					valClass = ClassFixedFP
				}
				g.loadVal[in.ID] = newNode(KindLoadVal, valClass, in, cnt)
			case ir.OpStore:
				aClass, reason, unpinned := addrClass(in)
				aNode := newNode(KindStoreAddr, aClass, in, cnt)
				g.storeAddr[in.ID] = aNode
				if unpinned {
					g.Unpinned[aNode] = reason
				}
				valClass := ClassFlex
				if in.IsFloat {
					valClass = ClassFixedFP
				}
				g.storeVal[in.ID] = newNode(KindStoreVal, valClass, in, cnt)
			case ir.OpCall:
				g.mainNode[in.ID] = newNode(KindCall, ClassPinInt, in, cnt)
			case ir.OpRet:
				class := ClassPinInt
				if len(in.Args) == 1 && fn.VRegType(in.Args[0]) == ir.F64 {
					class = ClassFixedFP
				}
				g.mainNode[in.ID] = newNode(KindRet, class, in, cnt)
			case ir.OpBr:
				g.mainNode[in.ID] = newNode(KindBranch, ClassFlex, in, cnt)
			case ir.OpJmp, ir.OpNop:
				g.mainNode[in.ID] = newNode(KindJump, ClassPinInt, in, cnt)
			case ir.OpMul, ir.OpDiv, ir.OpRem:
				// Integer multiply/divide are not supported by the
				// augmented FP subsystem (§1, 22-opcode extension).
				g.mainNode[in.ID] = newNode(KindPlain, ClassPinInt, in, cnt)
			case ir.OpAddrLocal:
				// Frame-slot addresses read the stack pointer, which lives
				// in the integer file.
				g.mainNode[in.ID] = newNode(KindPlain, ClassPinInt, in, cnt)
			case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
				ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE,
				ir.OpFCmpGT, ir.OpFCmpGE, ir.OpCvtIF, ir.OpCvtFI:
				g.mainNode[in.ID] = newNode(KindPlain, ClassFixedFP, in, cnt)
			case ir.OpConst, ir.OpCopy:
				class := ClassFlex
				if in.IsFloat || (in.Dst != 0 && fn.VRegType(in.Dst) == ir.F64) {
					class = ClassFixedFP
				}
				g.mainNode[in.ID] = newNode(KindPlain, class, in, cnt)
			default:
				// Integer ALU, address materializations.
				g.mainNode[in.ID] = newNode(KindPlain, ClassFlex, in, cnt)
			}
		}
	}

	g.addEdges()
	g.markActualArgs()
	return g
}

// defNode maps a reaching-definition site to the RDG node that produces the
// value: a parameter dummy, a load's value node, or the def instruction's
// main node. ok=false when the producer is FixedFP (the edge is cut — the
// value crosses through existing FP datapaths).
func (g *Graph) defNode(site dataflow.DefSite) (NodeID, bool) {
	if site.Instr == nil {
		id := g.paramNode[site.ParamIdx]
		return id, g.Nodes[id].Class != ClassFixedFP
	}
	in := site.Instr
	if in.Op == ir.OpLoad {
		id := g.loadVal[in.ID]
		return id, g.Nodes[id].Class != ClassFixedFP
	}
	id, ok := g.mainNode[in.ID]
	if !ok {
		return 0, false
	}
	return id, g.Nodes[id].Class != ClassFixedFP
}

// useNode maps (instruction, operand index) to the RDG node that consumes
// the value.
func (g *Graph) useNode(in *ir.Instr, argIdx int) (NodeID, bool) {
	switch in.Op {
	case ir.OpLoad:
		return g.loadAddr[in.ID], true
	case ir.OpStore:
		if argIdx == 0 {
			id := g.storeVal[in.ID]
			return id, g.Nodes[id].Class != ClassFixedFP
		}
		return g.storeAddr[in.ID], true
	}
	id, ok := g.mainNode[in.ID]
	if !ok {
		return 0, false
	}
	return id, g.Nodes[id].Class != ClassFixedFP
}

func (g *Graph) addEdges() {
	type edge struct{ p, c NodeID }
	seen := make(map[edge]bool)
	connect := func(p, c NodeID) {
		if p == c {
			return
		}
		e := edge{p, c}
		if seen[e] {
			return
		}
		seen[e] = true
		g.Nodes[p].Children = append(g.Nodes[p].Children, c)
		g.Nodes[c].Parents = append(g.Nodes[c].Parents, p)
	}
	for _, b := range g.Fn.Blocks {
		for _, in := range b.Instrs {
			uses := g.rd.UseDefs[in.ID]
			for ai := range in.Args {
				// Only integer register values create partition edges.
				if g.Fn.VRegType(in.Args[ai]) != ir.I64 {
					continue
				}
				useN, useOK := g.useNode(in, ai)
				if !useOK {
					continue
				}
				for _, d := range uses[ai] {
					defN, defOK := g.defNode(g.rd.Site(d))
					if !defOK {
						continue
					}
					connect(defN, useN)
				}
			}
		}
	}
}

// markActualArgs flags nodes feeding integer call arguments or integer
// return values (§6.4): these values must end up in integer registers, so a
// producer left in FPa pays an FPa→INT copy.
func (g *Graph) markActualArgs() {
	for _, n := range g.Nodes {
		if n.Kind != KindCall && n.Kind != KindRet {
			continue
		}
		for _, p := range n.Parents {
			g.Nodes[p].IsActualArg = true
		}
	}
}

// ArgProducers returns the RDG nodes producing operand argIdx of the given
// instruction (via reaching definitions). ok=false for operands whose
// producers include fixed-FP nodes or which are not integer register values.
// Used by the interprocedural FP-argument-passing extension (§6.6).
func (g *Graph) ArgProducers(in *ir.Instr, argIdx int) (producers []NodeID, ok bool) {
	if argIdx >= len(in.Args) || g.Fn.VRegType(in.Args[argIdx]) != ir.I64 {
		return nil, false
	}
	uses := g.rd.UseDefs[in.ID]
	if argIdx >= len(uses) {
		return nil, false
	}
	for _, d := range uses[argIdx] {
		n, defOK := g.defNode(g.rd.Site(d))
		if !defOK {
			return nil, false
		}
		producers = append(producers, n)
	}
	return producers, true
}

// blockCounts returns the execution-count estimate of every block, from the
// profile when the function is covered, otherwise p_B * 5^d_B.
func blockCounts(fn *ir.Func, profile *interp.Profile) map[*ir.Block]float64 {
	counts := make(map[*ir.Block]float64, len(fn.Blocks))
	if profile.Covered(fn.Name) {
		for _, b := range fn.Blocks {
			counts[b] = float64(profile.BlockCount(fn.Name, b.ID))
		}
		return counts
	}
	// Probabilistic estimate: propagate reach probability along forward
	// edges in reverse postorder (both branch directions equally likely),
	// then scale by 5^loopDepth.
	prob := make(map[*ir.Block]float64, len(fn.Blocks))
	order := fn.ReversePostorder()
	pos := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	prob[fn.Entry] = 1
	for _, b := range order {
		p := prob[b]
		if len(b.Succs) == 0 || p == 0 {
			continue
		}
		share := p / float64(len(b.Succs))
		for _, s := range b.Succs {
			if pos[s] > pos[b] { // forward edge only
				prob[s] += share
			}
		}
	}
	for _, b := range order {
		if prob[b] == 0 && b != fn.Entry {
			// Blocks only reachable through back edges (e.g. loop bodies of
			// do-while headers): give them their header's probability.
			prob[b] = 0.5
		}
		counts[b] = prob[b] * math.Pow(5, float64(b.LoopDepth))
	}
	for _, b := range fn.Blocks {
		if _, ok := counts[b]; !ok {
			counts[b] = 0.5 * math.Pow(5, float64(b.LoopDepth))
		}
	}
	return counts
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("RDG %s: %d nodes\n", g.Fn.Name, len(g.Nodes))
	for _, n := range g.Nodes {
		desc := ""
		if n.Instr != nil {
			desc = n.Instr.String()
		} else {
			desc = fmt.Sprintf("param %d", n.ParamIdx)
		}
		cls := [...]string{"flex", "int!", "fp!"}[n.Class]
		s += fmt.Sprintf("  n%-3d %-10s %-5s cnt=%-8.1f %s\n", n.ID, n.Kind, cls, n.Count, desc)
		if len(n.Parents) > 0 {
			s += "        parents:"
			for _, p := range n.Parents {
				s += fmt.Sprintf(" n%d", p)
			}
			s += "\n"
		}
	}
	return s
}
