package core_test

import (
	"testing"

	"fpint/internal/core"
)

// memFreeSrc is the §6.6 pathological case: a function with no memory
// access that the greedy schemes move to FPa wholesale.
const memFreeSrc = `
int seed;
int churn() {
	int s = seed;
	int r = 0;
	for (int i = 0; i < 100; i++) {
		s = (s ^ (s << 3)) + 77;
		r = r ^ (s >> 5) ^ (r << 1);
	}
	seed = s;
	return r & 65535;
}
int main() {
	seed = 5;
	int acc = 0;
	for (int k = 0; k < 10; k++) acc ^= churn();
	return acc;
}
`

func fpaFraction(g *core.Graph, p *core.Partition) float64 {
	var total, fpa float64
	for _, n := range g.Nodes {
		if n.Class == core.ClassFixedFP {
			continue
		}
		total += n.Count
		if p.InFPa(n.ID) {
			fpa += n.Count
		}
	}
	if total == 0 {
		return 0
	}
	return fpa / total
}

func TestBalancedCapsFPaFraction(t *testing.T) {
	mod, prof := build(t, memFreeSrc)
	fn := mod.Lookup("churn")
	g := core.BuildGraph(fn, prof)

	adv := core.AdvancedPartition(g, core.DefaultCostParams())
	advFrac := fpaFraction(g, adv)
	if advFrac < 0.4 {
		t.Fatalf("greedy scheme offloaded only %.2f of the memory-free function; expected wholesale move", advFrac)
	}

	bal := core.BalancedPartition(g, core.DefaultCostParams(), 0.35)
	if err := bal.Validate(); err != nil {
		t.Fatalf("balanced validate: %v", err)
	}
	balFrac := fpaFraction(g, bal)
	if balFrac > 0.35+1e-9 {
		t.Errorf("balanced fraction %.2f exceeds the 0.35 cap", balFrac)
	}
	if bal.Scheme != "balanced" {
		t.Errorf("scheme name = %q", bal.Scheme)
	}
}

func TestBalancedNoOpWhenUnderCap(t *testing.T) {
	mod, prof := build(t, gccFragment)
	fn := mod.Lookup("invalidate_for_call")
	g := core.BuildGraph(fn, prof)
	adv := core.AdvancedPartition(g, core.DefaultCostParams())
	bal := core.BalancedPartition(g, core.DefaultCostParams(), 0.99)
	for i := range adv.Assign {
		if adv.Assign[i] != bal.Assign[i] {
			t.Fatalf("cap 0.99 changed the assignment at node %d", i)
		}
	}
}

func TestBalancedDisabledByZeroCap(t *testing.T) {
	mod, prof := build(t, memFreeSrc)
	fn := mod.Lookup("churn")
	g := core.BuildGraph(fn, prof)
	bal := core.BalancedPartition(g, core.DefaultCostParams(), 0)
	adv := core.AdvancedPartition(g, core.DefaultCostParams())
	for i := range adv.Assign {
		if adv.Assign[i] != bal.Assign[i] {
			t.Fatalf("cap 0 should disable balancing")
		}
	}
}

func TestBalancedStillValidAcrossWorkloads(t *testing.T) {
	mod, prof := build(t, gccFragment)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		for _, cap := range []float64{0.1, 0.25, 0.5} {
			p := core.BalancedPartition(g, core.DefaultCostParams(), cap)
			if err := p.Validate(); err != nil {
				t.Errorf("%s cap=%.2f: %v", fn.Name, cap, err)
			}
		}
	}
}
