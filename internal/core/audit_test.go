package core_test

import (
	"strings"
	"testing"

	"fpint/internal/core"
)

// Every partitioning scheme must leave a complete decision trail: one
// record per examined component, each with a verdict and a reason, and the
// accepted set must be consistent with the cost model (Profit >= 0 under
// the advanced scheme).
func TestAuditTrailRecordsEveryComponent(t *testing.T) {
	mod, prof := build(t, gccFragment)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)

		basic := core.BasicPartition(g)
		if basic.Audit == nil {
			t.Fatalf("%s: basic partition has no audit", fn.Name)
		}
		if basic.Audit.Scheme != "basic" || basic.Audit.Fn != fn.Name {
			t.Errorf("%s: audit header wrong: %q/%q", fn.Name, basic.Audit.Fn, basic.Audit.Scheme)
		}

		adv := core.AdvancedPartition(g, core.CostParams{OCopy: 4, ODupl: 2})
		if adv.Audit == nil {
			t.Fatalf("%s: advanced partition has no audit", fn.Name)
		}
		for _, d := range adv.Audit.Components {
			if d.Reason == "" {
				t.Errorf("%s: component %d has no reason", fn.Name, d.Component)
			}
			if d.Accepted != (d.Profit >= 0) {
				t.Errorf("%s: component %d verdict %v contradicts profit %.1f",
					fn.Name, d.Component, d.Accepted, d.Profit)
			}
			if got := d.Benefit - d.Overhead; got != d.Profit {
				t.Errorf("%s: component %d profit %.1f != benefit-overhead %.1f",
					fn.Name, d.Component, d.Profit, got)
			}
		}
	}
}

// The audited verdicts must agree with the partition itself: a function
// whose components were all rejected offloads nothing, and accepted weight
// implies FPa assignments exist.
func TestAuditAgreesWithAssignment(t *testing.T) {
	mod, prof := build(t, gccFragment)
	for _, fn := range mod.Funcs {
		g := core.BuildGraph(fn, prof)
		p := core.AdvancedPartition(g, core.CostParams{OCopy: 4, ODupl: 2})
		accepted := 0
		for _, d := range p.Audit.Components {
			if d.Accepted {
				accepted++
			}
		}
		fpa := 0
		for _, n := range g.Nodes {
			if n.Class != core.ClassFixedFP && p.Assign[n.ID] == core.SubFPa {
				fpa++
			}
		}
		if (accepted > 0) != (fpa > 0) {
			t.Errorf("%s: %d accepted components but %d FPa nodes", fn.Name, accepted, fpa)
		}
	}
}

func TestAuditStringRendering(t *testing.T) {
	a := &core.Audit{Fn: "f", Scheme: "advanced"}
	if s := a.String(); !strings.Contains(s, "no offload candidates") {
		t.Errorf("empty audit rendering: %q", s)
	}
	a.Components = []core.ComponentDecision{{
		Nodes: 3, Weight: 99, Benefit: 99, Overhead: 132, Profit: -33,
		Accepted: false, Reason: "copy/dup overhead exceeds benefit",
	}}
	s := a.String()
	for _, want := range []string{"reject", "copy/dup overhead exceeds benefit", "99.0", "-33.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("audit table missing %q:\n%s", want, s)
		}
	}
}
