package core

import "sort"

// BalancedPartition implements the improvement §6.6 sketches: the greedy
// schemes assign as much work as possible to FPa without asking whether the
// INT subsystem goes idle ("for functions that perform very little or no
// memory access, this strategy can backfire" — e.g. compress's rand moves
// wholesale). This variant runs the advanced scheme and then demotes whole
// FPa components — least profit-dense first — until the FPa partition's
// estimated dynamic weight is at most maxFPaFraction of the function total.
//
// maxFPaFraction ≤ 0 or ≥ 1 leaves the advanced result untouched. The
// result remains a valid partition (transfer sets are recomputed for the
// final assignment).
func BalancedPartition(g *Graph, params CostParams, maxFPaFraction float64) *Partition {
	p := AdvancedPartition(g, params)
	if maxFPaFraction <= 0 || maxFPaFraction >= 1 {
		return p
	}
	p.Scheme = "balanced"

	// Total weight over partitionable nodes.
	var total, fpa float64
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		total += n.Count
		if p.InFPa(n.ID) {
			fpa += n.Count
		}
	}
	if total == 0 || fpa/total <= maxFPaFraction {
		return p
	}

	// Components of the current FPa partition with their weights and
	// transfer costs; demote in increasing profit density (benefit minus
	// transfer overhead per unit of weight).
	uf := newUnionFind(len(g.Nodes))
	for _, n := range g.Nodes {
		if !p.InFPa(n.ID) {
			continue
		}
		for _, c := range n.Children {
			if p.InFPa(c) {
				uf.union(int(n.ID), int(c))
			}
		}
	}
	type comp struct {
		root    int
		weight  float64
		members []NodeID
	}
	byRoot := make(map[int]*comp)
	for _, n := range g.Nodes {
		if !p.InFPa(n.ID) {
			continue
		}
		r := uf.find(int(n.ID))
		c := byRoot[r]
		if c == nil {
			c = &comp{root: r}
			byRoot[r] = c
		}
		c.weight += n.Count
		c.members = append(c.members, n.ID)
	}
	comps := make([]*comp, 0, len(byRoot))
	for _, c := range byRoot {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].weight != comps[j].weight {
			return comps[i].weight < comps[j].weight
		}
		return comps[i].root < comps[j].root
	})

	for _, c := range comps {
		if fpa/total <= maxFPaFraction {
			break
		}
		for _, id := range c.members {
			p.Assign[id] = SubINT
		}
		fpa -= c.weight
		if p.Audit != nil {
			minNode := c.members[0]
			for _, id := range c.members {
				if id < minNode {
					minNode = id
				}
			}
			p.Audit.Scheme = "balanced"
			p.Audit.Components = append(p.Audit.Components, ComponentDecision{
				Component: len(p.Audit.Components),
				MinNode:   minNode, Nodes: len(c.members),
				Weight: c.weight, Benefit: c.weight,
				Reason: "demoted: FPa weight exceeded the load-balance cap (§6.6)",
			})
		}
	}

	// Recompute the transfer sets for the reduced assignment through the
	// shared cost model — the same pricing path the advanced scheme and the
	// oracle use.
	cm := newCostModel(g, params)
	inINT := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Class != ClassFixedFP {
			inINT[n.ID] = p.Assign[n.ID] == SubINT
		}
	}
	copies, dups := cm.transferSet(inINT)
	p.CopyNodes = copies
	p.DupNodes = dups
	p.OutCopyNodes = make(map[NodeID]bool)
	for _, n := range g.Nodes {
		if cm.partitionable(n.ID) && !inINT[n.ID] && n.IsActualArg {
			p.OutCopyNodes[n.ID] = true
		}
	}
	return p
}
