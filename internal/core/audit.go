package core

import (
	"fmt"
	"sort"
	"strings"
)

// ComponentDecision is the audit record of one connected component the
// partitioner examined: its size, profile weight, the §6.1 cost-model
// terms, and why it was accepted into FPa or sent back to INT. Benefit is
// the profile-weighted dynamic instruction count the component would
// offload; Overhead is the copy/duplicate traffic (plus §6.4 FPa→INT
// copies for actual-argument producers) that offloading would cost;
// Profit = Benefit − Overhead.
type ComponentDecision struct {
	Component int     // stable component index (ordered by lowest node ID)
	MinNode   NodeID  // lowest-numbered member node
	Nodes     int     // candidate (non-pinned, non-FixedFP) nodes
	Transfers int     // copy/duplicate nodes attached to the component
	Weight    float64 // profile weight of the candidate nodes
	Benefit   float64
	Overhead  float64
	Profit    float64
	Accepted  bool
	Reason    string
}

// UnpinDecision is the audit record of one load/store address node the
// static analysis unpinned: the node, the instruction's source line, the
// analysis' justification, and whether the partitioner actually placed the
// unpinned address in FPa (unpinning only removes the constraint; the cost
// model still decides placement).
type UnpinDecision struct {
	Node    NodeID
	Kind    string // "load-addr" or "store-addr"
	Line    int
	Reason  string
	Offload bool // the address node landed in FPa
}

// Audit is the partition-decision trail of one function under one scheme.
type Audit struct {
	Fn         string
	Scheme     string
	Components []ComponentDecision
	// Unpins records every address node the analysis oracle unpinned,
	// with its justification and placement outcome.
	Unpins []UnpinDecision `json:",omitempty"`
	// Notes records exceptional events attached to the trail after the
	// fact — e.g. that this partition was produced by a degradation-ladder
	// fallback after a stronger scheme failed verification.
	Notes []string `json:",omitempty"`
}

// String renders the audit as an aligned table with one row per component.
func (a *Audit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==== partition audit of %s (%s) ====\n", a.Fn, a.Scheme)
	for _, note := range a.Notes {
		fmt.Fprintf(&sb, "  !! %s\n", note)
	}
	if len(a.Components) == 0 {
		sb.WriteString("  (no offload candidates)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %4s %5s %6s %9s %9s %9s %9s  %-6s %s\n",
		"comp", "nodes", "xfers", "weight", "benefit", "overhead", "profit", "verdict", "reason")
	for _, c := range a.Components {
		verdict := "reject"
		if c.Accepted {
			verdict = "accept"
		}
		fmt.Fprintf(&sb, "  %4d %5d %6d %9.1f %9.1f %9.1f %9.1f  %-6s %s\n",
			c.Component, c.Nodes, c.Transfers, c.Weight, c.Benefit, c.Overhead, c.Profit, verdict, c.Reason)
	}
	for _, u := range a.Unpins {
		placed := "kept in INT"
		if u.Offload {
			placed = "offloaded"
		}
		fmt.Fprintf(&sb, "  unpin n%d (%s, line %d): %s — %s\n", u.Node, u.Kind, u.Line, u.Reason, placed)
	}
	return sb.String()
}

// attachUnpins fills p.Audit.Unpins from the graph's unpin records, in node
// order, noting for each whether the partitioner placed it in FPa.
func attachUnpins(p *Partition) {
	g := p.G
	if len(g.Unpinned) == 0 {
		return
	}
	ids := make([]NodeID, 0, len(g.Unpinned))
	for id := range g.Unpinned {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Nodes[id]
		line := 0
		if n.Instr != nil {
			line = n.Instr.Line
		}
		p.Audit.Unpins = append(p.Audit.Unpins, UnpinDecision{
			Node:    id,
			Kind:    n.Kind.String(),
			Line:    line,
			Reason:  g.Unpinned[id],
			Offload: p.Assign[id] == SubFPa,
		})
	}
}

// sortComponents orders decisions by their lowest member node and assigns
// stable component indices.
func sortComponents(comps []ComponentDecision) []ComponentDecision {
	sort.Slice(comps, func(i, j int) bool { return comps[i].MinNode < comps[j].MinNode })
	for i := range comps {
		comps[i].Component = i
	}
	return comps
}

// auditBasic records the §5 decision for every undirected component: a
// component is offloaded iff it contains no pinned-INT node (there is no
// copy/duplicate mechanism in the basic scheme, so Overhead is always 0).
func auditBasic(g *Graph, comp []int) *Audit {
	type agg struct {
		minNode NodeID
		nodes   int
		weight  float64
		pinned  bool
	}
	byComp := make(map[int]*agg)
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		a, ok := byComp[comp[n.ID]]
		if !ok {
			a = &agg{minNode: n.ID}
			byComp[comp[n.ID]] = a
		}
		if n.ID < a.minNode {
			a.minNode = n.ID
		}
		a.nodes++
		a.weight += n.Count
		if n.Class == ClassPinInt {
			a.pinned = true
		}
	}
	audit := &Audit{Fn: g.Fn.Name, Scheme: "basic"}
	for _, a := range byComp {
		d := ComponentDecision{
			MinNode: a.minNode, Nodes: a.nodes, Weight: a.weight,
		}
		if a.pinned {
			d.Accepted = false
			d.Reason = "contains a pinned-INT node (load/store address, mul/div, call or return)"
		} else {
			d.Accepted = true
			d.Benefit = a.weight
			d.Profit = a.weight
			d.Reason = "exchanges no register value with INT: offloaded whole to FPa"
		}
		audit.Components = append(audit.Components, d)
	}
	audit.Components = sortComponents(audit.Components)
	return audit
}
