package core

// BasicPartition implements the basic partitioning scheme (§5): no extra
// instructions are introduced; all inter-partition communication flows
// through existing program loads and stores.
//
// The partitioning conditions (§5.1) require that no FPa node exchange a
// register value with an INT node in either direction. Interpreted on the
// undirected RDG, every connected component belongs wholly to one
// partition. Components containing a load/store address node, a call
// argument/return node, or any other pinned-INT node go to INT; everything
// else — components computing only branch outcomes and store values — goes
// to FPa (§5.2, the algorithm is linear in nodes+edges).
func BasicPartition(g *Graph) *Partition {
	p := newPartition(g, "basic")
	comp := undirectedComponents(g)
	// Pinned components go to INT.
	pinned := make(map[int]bool)
	for _, n := range g.Nodes {
		if n.Class == ClassPinInt {
			pinned[comp[n.ID]] = true
		}
	}
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP {
			continue
		}
		if pinned[comp[n.ID]] {
			p.Assign[n.ID] = SubINT
		} else {
			p.Assign[n.ID] = SubFPa
		}
	}
	p.Audit = auditBasic(g, comp)
	attachUnpins(p)
	return p
}

// undirectedComponents labels each non-FixedFP node with its connected
// component in the undirected RDG. FixedFP nodes get label -1 and their
// edges do not join components.
func undirectedComponents(g *Graph) []int {
	comp := make([]int, len(g.Nodes))
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for _, n := range g.Nodes {
		if n.Class == ClassFixedFP || comp[n.ID] >= 0 {
			continue
		}
		// BFS over undirected edges.
		label := next
		next++
		stack := []NodeID{n.ID}
		comp[n.ID] = label
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(m NodeID) {
				if g.Nodes[m].Class == ClassFixedFP || comp[m] >= 0 {
					return
				}
				comp[m] = label
				stack = append(stack, m)
			}
			for _, m := range g.Nodes[cur].Parents {
				visit(m)
			}
			for _, m := range g.Nodes[cur].Children {
				visit(m)
			}
		}
	}
	return comp
}
