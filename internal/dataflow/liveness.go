package dataflow

import "fpint/internal/ir"

// Liveness holds per-block live-in/live-out virtual register sets.
type Liveness struct {
	Fn      *ir.Func
	LiveIn  map[*ir.Block]*BitSet // indexed by VReg
	LiveOut map[*ir.Block]*BitSet
}

// ComputeLiveness solves backward liveness over virtual registers.
func ComputeLiveness(fn *ir.Func) *Liveness {
	n := fn.NumVRegs()
	lv := &Liveness{
		Fn:      fn,
		LiveIn:  make(map[*ir.Block]*BitSet),
		LiveOut: make(map[*ir.Block]*BitSet),
	}
	use := make(map[*ir.Block]*BitSet)
	def := make(map[*ir.Block]*BitSet)
	for _, b := range fn.Blocks {
		u := NewBitSet(n)
		d := NewBitSet(n)
		for _, instr := range b.Instrs {
			for _, a := range instr.Args {
				if !d.Has(int(a)) {
					u.Set(int(a))
				}
			}
			if instr.Dst != 0 {
				d.Set(int(instr.Dst))
			}
		}
		use[b] = u
		def[b] = d
		lv.LiveIn[b] = NewBitSet(n)
		lv.LiveOut[b] = NewBitSet(n)
	}
	// Iterate in postorder (reverse of RPO) for fast convergence.
	rpo := fn.ReversePostorder()
	changed := true
	for changed {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := NewBitSet(n)
			for _, s := range b.Succs {
				out.UnionWith(lv.LiveIn[s])
			}
			if !out.Equal(lv.LiveOut[b]) {
				lv.LiveOut[b].CopyFrom(out)
			}
			in := out.Copy()
			in.DiffWith(def[b])
			in.UnionWith(use[b])
			if !in.Equal(lv.LiveIn[b]) {
				lv.LiveIn[b].CopyFrom(in)
				changed = true
			}
		}
	}
	return lv
}
