// Package dataflow provides the dataflow analyses the compiler needs:
// reaching definitions (used to build the register dependence graph) and
// virtual-register liveness (used by the register allocator).
package dataflow

import "math/bits"

// BitSet is a fixed-capacity bit set.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns a set capable of holding values [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *BitSet) Len() int { return s.n }

// Set adds i to the set.
func (s *BitSet) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (s *BitSet) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (s *BitSet) Has(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Copy returns a fresh copy of the set.
func (s *BitSet) Copy() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the set with o's contents.
func (s *BitSet) CopyFrom(o *BitSet) { copy(s.words, o.words) }

// UnionWith adds all of o's members; reports whether the set changed.
func (s *BitSet) UnionWith(o *BitSet) bool {
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DiffWith removes all of o's members.
func (s *BitSet) DiffWith(o *BitSet) {
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Equal reports set equality.
func (s *BitSet) Equal(o *BitSet) bool {
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// ForEach calls f for every member in increasing order.
func (s *BitSet) ForEach(f func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := trailingZeros(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// Count returns the number of members.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += popcount(w)
	}
	return c
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func popcount(x uint64) int { return bits.OnesCount64(x) }
