package dataflow_test

import (
	"testing"
	"testing/quick"

	"fpint/internal/dataflow"
	"fpint/internal/ir"
)

func TestBitSetBasics(t *testing.T) {
	s := dataflow.NewBitSet(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("bit %d set in empty set", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatalf("clear failed")
	}
}

func TestBitSetUnionDiffEqual(t *testing.T) {
	a := dataflow.NewBitSet(200)
	b := dataflow.NewBitSet(200)
	a.Set(3)
	a.Set(150)
	b.Set(150)
	b.Set(199)
	c := a.Copy()
	if !c.Equal(a) {
		t.Fatal("copy not equal")
	}
	if changed := c.UnionWith(b); !changed {
		t.Fatal("union reported no change")
	}
	for _, i := range []int{3, 150, 199} {
		if !c.Has(i) {
			t.Fatalf("union missing %d", i)
		}
	}
	if changed := c.UnionWith(b); changed {
		t.Fatal("second union reported change")
	}
	c.DiffWith(b)
	if c.Has(150) || c.Has(199) || !c.Has(3) {
		t.Fatal("diff wrong")
	}
}

func TestBitSetForEachOrdered(t *testing.T) {
	s := dataflow.NewBitSet(500)
	want := []int{2, 64, 65, 300, 499}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBitSetQuickSetHasInvariant(t *testing.T) {
	f := func(indices []uint16) bool {
		s := dataflow.NewBitSet(1 << 16)
		seen := make(map[int]bool)
		for _, u := range indices {
			s.Set(int(u))
			seen[int(u)] = true
		}
		for i := range seen {
			if !s.Has(i) {
				return false
			}
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// buildDiamond constructs:
//
//	b0: v1 = const 1; v2 = const 2; br v1 -> b1, b2
//	b1: v2 = const 3; jmp b3
//	b2: (nothing)    jmp b3
//	b3: v3 = add v2, v2; ret v3
//
// At the add, reaching defs of v2 are the const in b0 (via b2) and the
// const in b1.
func buildDiamond() (*ir.Func, *ir.Instr, *ir.Instr, *ir.Instr) {
	fn := ir.NewFunc("diamond", ir.I64)
	v1 := fn.NewVReg(ir.I64)
	v2 := fn.NewVReg(ir.I64)
	v3 := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	b1 := fn.NewBlock()
	b2 := fn.NewBlock()
	b3 := fn.NewBlock()
	fn.Entry = b0

	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: v1, Imm: 1})
	def0 := b0.Append(&ir.Instr{Op: ir.OpConst, Dst: v2, Imm: 2})
	b0.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{v1}})
	b0.Succs = []*ir.Block{b1, b2}

	def1 := b1.Append(&ir.Instr{Op: ir.OpConst, Dst: v2, Imm: 3})
	b1.Append(&ir.Instr{Op: ir.OpJmp})
	b1.Succs = []*ir.Block{b3}

	b2.Append(&ir.Instr{Op: ir.OpNop})
	b2.Append(&ir.Instr{Op: ir.OpJmp})
	b2.Succs = []*ir.Block{b3}

	use := b3.Append(&ir.Instr{Op: ir.OpAdd, Dst: v3, Args: []ir.VReg{v2, v2}})
	b3.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v3}})

	fn.RecomputePreds()
	fn.Renumber()
	return fn, def0, def1, use
}

func TestReachingDefsDiamond(t *testing.T) {
	fn, def0, def1, use := buildDiamond()
	rd := dataflow.ComputeReachingDefs(fn)
	defs := rd.UseDefs[use.ID][0]
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2", len(defs))
	}
	got := map[int]bool{}
	for _, d := range defs {
		got[d] = true
	}
	if !got[def0.ID] || !got[def1.ID] {
		t.Fatalf("reaching defs %v, want {%d, %d}", defs, def0.ID, def1.ID)
	}
}

func TestReachingDefsKill(t *testing.T) {
	// Straight line: v = 1; v = 2; use v -> only the second def reaches.
	fn := ir.NewFunc("kill", ir.I64)
	v := fn.NewVReg(ir.I64)
	r := fn.NewVReg(ir.I64)
	b := fn.NewBlock()
	fn.Entry = b
	b.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 1})
	second := b.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 2})
	use := b.Append(&ir.Instr{Op: ir.OpCopy, Dst: r, Args: []ir.VReg{v}})
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{r}})
	fn.Renumber()
	rd := dataflow.ComputeReachingDefs(fn)
	defs := rd.UseDefs[use.ID][0]
	if len(defs) != 1 || defs[0] != second.ID {
		t.Fatalf("reaching defs = %v, want [%d]", defs, second.ID)
	}
}

func TestReachingDefsParams(t *testing.T) {
	fn := ir.NewFunc("param", ir.I64)
	p := fn.NewVReg(ir.I64)
	fn.Params = []ir.VReg{p}
	r := fn.NewVReg(ir.I64)
	b := fn.NewBlock()
	fn.Entry = b
	use := b.Append(&ir.Instr{Op: ir.OpCopy, Dst: r, Args: []ir.VReg{p}})
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{r}})
	fn.Renumber()
	rd := dataflow.ComputeReachingDefs(fn)
	defs := rd.UseDefs[use.ID][0]
	if len(defs) != 1 || !rd.IsParamSite(defs[0]) {
		t.Fatalf("param use should see exactly the param site, got %v", defs)
	}
	site := rd.Site(defs[0])
	if site.Instr != nil || site.ParamIdx != 0 {
		t.Fatalf("bad site %+v", site)
	}
}

func TestLivenessLoop(t *testing.T) {
	// b0: v1 = const; jmp b1
	// b1: v2 = add v1, v1; br v2 -> b1, b2
	// b2: ret v1
	// v1 is live throughout the loop.
	fn := ir.NewFunc("live", ir.I64)
	v1 := fn.NewVReg(ir.I64)
	v2 := fn.NewVReg(ir.I64)
	b0 := fn.NewBlock()
	b1 := fn.NewBlock()
	b2 := fn.NewBlock()
	fn.Entry = b0
	b0.Append(&ir.Instr{Op: ir.OpConst, Dst: v1, Imm: 1})
	b0.Append(&ir.Instr{Op: ir.OpJmp})
	b0.Succs = []*ir.Block{b1}
	b1.Append(&ir.Instr{Op: ir.OpAdd, Dst: v2, Args: []ir.VReg{v1, v1}})
	b1.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.VReg{v2}})
	b1.Succs = []*ir.Block{b1, b2}
	b2.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v1}})
	fn.RecomputePreds()
	fn.Renumber()

	lv := dataflow.ComputeLiveness(fn)
	if !lv.LiveIn[b1].Has(int(v1)) {
		t.Error("v1 not live into loop")
	}
	if !lv.LiveOut[b1].Has(int(v1)) {
		t.Error("v1 not live out of loop body")
	}
	if lv.LiveIn[b0].Has(int(v1)) {
		t.Error("v1 live into entry before its def")
	}
	if lv.LiveOut[b2].Has(int(v1)) {
		t.Error("v1 live out of exit")
	}
}
