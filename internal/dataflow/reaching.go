package dataflow

import "fpint/internal/ir"

// DefSite identifies a definition of a virtual register: either an
// instruction (Instr != nil) or a function parameter (Instr == nil,
// ParamIdx valid).
type DefSite struct {
	Instr    *ir.Instr
	ParamIdx int
}

// ReachingDefs holds the solved reaching-definitions problem for a function.
//
// Definition sites are numbered: instruction IDs [0, NumInstrs) for
// instructions with a destination register, then NumInstrs+i for parameter i.
type ReachingDefs struct {
	Fn *ir.Func

	// numSites = fn.NumInstrs() + len(fn.Params).
	numSites int

	// defsOf[v] lists the def-site indices of virtual register v.
	defsOf map[ir.VReg][]int

	// sites[i] describes site i.
	sites []DefSite

	// in[block] is the set of def sites reaching block entry.
	in map[*ir.Block]*BitSet

	// UseDefs[instrID][argIdx] lists the def sites reaching that use.
	UseDefs map[int][][]int
}

// ComputeReachingDefs solves reaching definitions for fn. The function must
// have been renumbered (ir.Func.Renumber).
func ComputeReachingDefs(fn *ir.Func) *ReachingDefs {
	n := fn.NumInstrs()
	rd := &ReachingDefs{
		Fn:       fn,
		numSites: n + len(fn.Params),
		defsOf:   make(map[ir.VReg][]int),
		sites:    make([]DefSite, n+len(fn.Params)),
		in:       make(map[*ir.Block]*BitSet),
		UseDefs:  make(map[int][][]int),
	}
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			if instr.Dst != 0 {
				rd.defsOf[instr.Dst] = append(rd.defsOf[instr.Dst], instr.ID)
				rd.sites[instr.ID] = DefSite{Instr: instr}
			}
		}
	}
	for i, p := range fn.Params {
		idx := n + i
		rd.defsOf[p] = append(rd.defsOf[p], idx)
		rd.sites[idx] = DefSite{ParamIdx: i}
	}

	// GEN/KILL per block.
	gen := make(map[*ir.Block]*BitSet)
	kill := make(map[*ir.Block]*BitSet)
	for _, b := range fn.Blocks {
		g := NewBitSet(rd.numSites)
		k := NewBitSet(rd.numSites)
		for _, instr := range b.Instrs {
			if instr.Dst == 0 {
				continue
			}
			for _, d := range rd.defsOf[instr.Dst] {
				g.Clear(d)
				k.Set(d)
			}
			g.Set(instr.ID)
			k.Clear(instr.ID)
		}
		gen[b] = g
		kill[b] = k
	}

	// Entry IN = parameter defs.
	out := make(map[*ir.Block]*BitSet)
	for _, b := range fn.Blocks {
		rd.in[b] = NewBitSet(rd.numSites)
		out[b] = NewBitSet(rd.numSites)
	}
	entryIn := NewBitSet(rd.numSites)
	for i := range fn.Params {
		entryIn.Set(n + i)
	}
	rd.in[fn.Entry].CopyFrom(entryIn)

	// Iterate to fixpoint in reverse postorder.
	order := fn.ReversePostorder()
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			inSet := rd.in[b]
			if b != fn.Entry {
				fresh := NewBitSet(rd.numSites)
				for _, p := range b.Preds {
					fresh.UnionWith(out[p])
				}
				if !fresh.Equal(inSet) {
					inSet.CopyFrom(fresh)
				}
			}
			newOut := inSet.Copy()
			newOut.DiffWith(kill[b])
			newOut.UnionWith(gen[b])
			if !newOut.Equal(out[b]) {
				out[b].CopyFrom(newOut)
				changed = true
			}
		}
	}

	// Walk each block once more to attribute defs to uses.
	for _, b := range fn.Blocks {
		cur := rd.in[b].Copy()
		for _, instr := range b.Instrs {
			uses := make([][]int, len(instr.Args))
			for ai, a := range instr.Args {
				var reach []int
				for _, d := range rd.defsOf[a] {
					if cur.Has(d) {
						reach = append(reach, d)
					}
				}
				uses[ai] = reach
			}
			rd.UseDefs[instr.ID] = uses
			if instr.Dst != 0 {
				for _, d := range rd.defsOf[instr.Dst] {
					cur.Clear(d)
				}
				cur.Set(instr.ID)
			}
		}
	}
	return rd
}

// NumSites returns the total number of definition sites.
func (rd *ReachingDefs) NumSites() int { return rd.numSites }

// Site returns the description of def site idx.
func (rd *ReachingDefs) Site(idx int) DefSite { return rd.sites[idx] }

// IsParamSite reports whether def site idx is a function parameter.
func (rd *ReachingDefs) IsParamSite(idx int) bool { return idx >= rd.Fn.NumInstrs() }

// DefsOf returns the def sites of register v.
func (rd *ReachingDefs) DefsOf(v ir.VReg) []int { return rd.defsOf[v] }
