package dataflow_test

import (
	"fmt"
	"testing"

	"fpint/internal/dataflow"
	"fpint/internal/ir"
)

// TestBitSetEdgeSizes exercises the word-boundary sizes where the packed
// representation switches word counts: 0 (no words), 63/64 (one word,
// full), 65 (spills into a second word).
func TestBitSetEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 63, 64, 65} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := dataflow.NewBitSet(n)
			if s.Len() != n {
				t.Fatalf("Len = %d, want %d", s.Len(), n)
			}
			if s.Count() != 0 {
				t.Fatalf("fresh set has count %d", s.Count())
			}
			for i := 0; i < n; i++ {
				s.Set(i)
			}
			if s.Count() != n {
				t.Fatalf("full set count = %d, want %d", s.Count(), n)
			}
			if n > 0 {
				s.Clear(n - 1)
				if s.Has(n-1) || s.Count() != n-1 {
					t.Fatalf("clearing top bit %d failed", n-1)
				}
				s.Set(n - 1)
			}

			// Copy/Equal on every size, including zero.
			c := s.Copy()
			if !c.Equal(s) || c.Len() != n {
				t.Fatal("copy differs from original")
			}

			// Union with a sparse set: change iff n > 0 and the set was
			// not already full (it is full, so never).
			o := dataflow.NewBitSet(n)
			if n > 0 {
				o.Set(0)
				o.Set(n - 1)
			}
			if changed := s.UnionWith(o); changed {
				t.Fatal("union into a full set reported change")
			}
			if changed := o.UnionWith(s); (n > 2) != changed {
				t.Fatalf("union change = %v for n=%d", changed, n)
			}

			// ForEach must visit exactly the members, strictly ordered.
			prev, visits := -1, 0
			s.ForEach(func(i int) {
				if i <= prev || i >= n {
					t.Fatalf("ForEach out of order or range: %d after %d", i, prev)
				}
				prev = i
				visits++
			})
			if visits != n {
				t.Fatalf("ForEach visited %d members, want %d", visits, n)
			}

			// Difference drains everything.
			c.DiffWith(s)
			if c.Count() != 0 {
				t.Fatalf("self-difference left %d bits", c.Count())
			}
		})
	}
}

// buildLivenessFixture constructs one of the liveness edge cases and
// returns the function plus the blocks of interest.
func buildLivenessFixture(kind string) (*ir.Func, map[string]*ir.Block) {
	fn := ir.NewFunc(kind, ir.I64)
	v := fn.NewVReg(ir.I64)
	blocks := map[string]*ir.Block{}
	switch kind {
	case "empty-pass-through":
		// entry(def v) → empty → exit(use v): the empty block must
		// transport liveness untouched.
		entry := fn.NewBlock()
		empty := fn.NewBlock()
		exit := fn.NewBlock()
		fn.Entry = entry
		entry.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 7})
		entry.Append(&ir.Instr{Op: ir.OpJmp})
		entry.Succs = []*ir.Block{empty}
		empty.Succs = []*ir.Block{exit}
		exit.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v}})
		blocks["entry"], blocks["empty"], blocks["exit"] = entry, empty, exit
	case "unreachable-user":
		// entry(def v, ret v) plus an orphan block that uses v but has no
		// predecessors: the solver must not propagate its demand anywhere.
		entry := fn.NewBlock()
		orphan := fn.NewBlock()
		fn.Entry = entry
		entry.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Imm: 1})
		entry.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{v}})
		w := fn.NewVReg(ir.I64)
		orphan.Append(&ir.Instr{Op: ir.OpCopy, Dst: w, Args: []ir.VReg{v}})
		orphan.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.VReg{w}})
		blocks["entry"], blocks["orphan"] = entry, orphan
	}
	fn.RecomputePreds()
	fn.Renumber()
	return fn, blocks
}

// TestLivenessEdgeBlocks covers blocks the usual fixtures never hit:
// instruction-less pass-through blocks and unreachable blocks.
func TestLivenessEdgeBlocks(t *testing.T) {
	t.Run("empty-pass-through", func(t *testing.T) {
		fn, bs := buildLivenessFixture("empty-pass-through")
		lv := dataflow.ComputeLiveness(fn)
		v := 1 // first allocated vreg
		if !lv.LiveIn[bs["empty"]].Has(v) || !lv.LiveOut[bs["empty"]].Has(v) {
			t.Fatal("empty block does not transport liveness of v")
		}
		if !lv.LiveOut[bs["entry"]].Has(v) {
			t.Fatal("v not live out of its defining block")
		}
		if lv.LiveIn[bs["entry"]].Has(v) {
			t.Fatal("v live into entry despite being defined there")
		}
		if lv.LiveOut[bs["exit"]].Count() != 0 {
			t.Fatal("exit block has live-out values")
		}
	})
	t.Run("unreachable-user", func(t *testing.T) {
		fn, bs := buildLivenessFixture("unreachable-user")
		lv := dataflow.ComputeLiveness(fn)
		// Every block — reachable or not — gets live sets.
		for name, b := range bs {
			if lv.LiveIn[b] == nil || lv.LiveOut[b] == nil {
				t.Fatalf("%s: missing live sets", name)
			}
		}
		// The orphan's demand for v must not leak into reachable code:
		// nothing precedes it, so v is not live out of entry.
		if lv.LiveOut[bs["entry"]].Count() != 0 {
			t.Fatal("unreachable use leaked into entry's live-out")
		}
		if lv.LiveOut[bs["orphan"]].Count() != 0 {
			t.Fatal("orphan block has live-out values")
		}
	})
}
