// Package fpint is a from-scratch reproduction of "Exploiting Idle
// Floating-Point Resources for Integer Execution" (Sastry, Palacharla,
// Smith; PLDI 1998): the register-dependence-graph based basic and advanced
// code-partitioning schemes (internal/core), a complete mini-C compiler
// substrate (internal/lang, irgen, opt, codegen), an extended MIPS-like ISA
// with the paper's 22 FPa opcodes (internal/isa), functional and
// cycle-level out-of-order timing simulators (internal/sim,
// internal/uarch), and the SPECint95/FP-style workload suite plus
// experiment harness (internal/bench) that regenerates every table and
// figure of the evaluation.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for measured-vs-paper results.
package fpint
