package fpint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/core"
	"fpint/internal/interp"
	"fpint/internal/sim"
)

// offloadWeight sums the profile-weighted FPa instruction weight over all
// functions of a compiled program.
func offloadWeight(res *codegen.Result) float64 {
	total := 0.0
	for _, p := range res.Partitions {
		if p == nil {
			continue
		}
		total += p.ComputeStats().FPaWeight
	}
	return total
}

func unpinCount(res *codegen.Result) int {
	n := 0
	for _, p := range res.Partitions {
		if p == nil || p.Audit == nil {
			continue
		}
		n += len(p.Audit.Unpins)
	}
	return n
}

// TestAnalysisSharpensOffload is the acceptance gate for the
// analysis-sharpened partitioning: with -analysis=on the static offload
// (profile-weighted FPa share) must strictly increase on at least three
// testdata programs under the basic scheme, never decrease anywhere, and
// the partition verifier must accept every analysis-sharpened partition.
// Functional behavior must be identical to the reference interpreter.
func TestAnalysisSharpensOffload(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	improved := 0
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		mod, prof, err := codegen.FrontendPipeline(string(data))
		if err != nil {
			t.Fatalf("%s: frontend: %v", name, err)
		}
		ref, err := interp.New(mod).Run()
		if err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}

		compile := func(analysis bool) *codegen.Result {
			res, err := codegen.Compile(mod, codegen.Options{
				Scheme: codegen.SchemeBasic, Profile: prof, Analysis: analysis,
			})
			if err != nil {
				t.Fatalf("%s: compile(analysis=%v): %v", name, analysis, err)
			}
			return res
		}
		off := compile(false)
		on := compile(true)

		// Every analysis-sharpened partition must satisfy the verifier,
		// including the unpin-justification invariant.
		for fn, p := range on.Partitions {
			if err := core.VerifyPartition(p); err != nil {
				t.Errorf("%s: %s: %v", name, fn, err)
			}
		}

		// Functional equivalence under analysis-sharpened partitioning.
		out, err := sim.New(on.Prog).Run()
		if err != nil {
			t.Fatalf("%s: run(analysis=on): %v", name, err)
		}
		if out.Ret != ref.Ret || out.Output != ref.Output {
			t.Errorf("%s: analysis=on ret=%d want %d", name, out.Ret, ref.Ret)
		}

		wOff, wOn := offloadWeight(off), offloadWeight(on)
		if wOn < wOff {
			t.Errorf("%s: analysis decreased offload: %.1f -> %.1f", name, wOff, wOn)
		}
		if wOn > wOff {
			improved++
		}
		t.Logf("%s: offload weight %.1f -> %.1f (%d unpins)", name, wOff, wOn, unpinCount(on))
	}
	if improved < 3 {
		t.Errorf("analysis improved basic-scheme offload on %d programs, want >= 3", improved)
	}
}

// TestAnalysisAdvancedFunctional cross-checks the advanced scheme with
// analysis on: identical output and a verifier-clean partition.
func TestAnalysisAdvancedFunctional(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		mod, prof, err := codegen.FrontendPipeline(string(data))
		if err != nil {
			t.Fatalf("%s: frontend: %v", name, err)
		}
		ref, err := interp.New(mod).Run()
		if err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}
		res, err := codegen.Compile(mod, codegen.Options{
			Scheme: codegen.SchemeAdvanced, Profile: prof, Analysis: true,
		})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for fn, p := range res.Partitions {
			if err := core.VerifyPartition(p); err != nil {
				t.Errorf("%s: %s: %v", name, fn, err)
			}
		}
		out, err := sim.New(res.Prog).Run()
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if out.Ret != ref.Ret || out.Output != ref.Output {
			t.Errorf("%s: ret=%d want %d", name, out.Ret, ref.Ret)
		}
	}
}
