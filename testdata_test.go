package fpint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpint/internal/codegen"
	"fpint/internal/interp"
	"fpint/internal/sim"
	"fpint/internal/uarch"
)

// TestTestdataPrograms compiles every sample program under testdata/ with
// all schemes (and the interprocedural extension) and cross-checks results
// against the IR interpreter on both machine configurations.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			mod, prof, err := codegen.FrontendPipeline(string(data))
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			ref, err := interp.New(mod).Run()
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			optsList := []codegen.Options{
				{Scheme: codegen.SchemeNone},
				{Scheme: codegen.SchemeBasic},
				{Scheme: codegen.SchemeAdvanced},
				{Scheme: codegen.SchemeAdvanced, InterprocFPArgs: true},
				{Scheme: codegen.SchemeBalanced, MaxFPaFraction: 0.3},
				{Scheme: codegen.SchemeBasic, Analysis: true},
				{Scheme: codegen.SchemeAdvanced, Analysis: true},
				{Scheme: codegen.SchemeOptimal},
				{Scheme: codegen.SchemeOptimal, Analysis: true},
			}
			for _, opts := range optsList {
				opts.Profile = prof
				res, err := codegen.Compile(mod, opts)
				if err != nil {
					t.Fatalf("%v: compile: %v", opts.Scheme, err)
				}
				out, err := sim.New(res.Prog).Run()
				if err != nil {
					t.Fatalf("%v: run: %v", opts.Scheme, err)
				}
				if out.Ret != ref.Ret || out.Output != ref.Output {
					t.Fatalf("%v: ret=%d want %d", opts.Scheme, out.Ret, ref.Ret)
				}
			}
			// Timing on both Table 1 machines with the advanced scheme.
			res, err := codegen.Compile(mod, codegen.Options{Scheme: codegen.SchemeAdvanced, Profile: prof})
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []uarch.Config{uarch.Config4Way(), uarch.Config8Way()} {
				out, st, err := uarch.Run(res.Prog, cfg)
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if out.Ret != ref.Ret {
					t.Fatalf("%s: ret=%d want %d", cfg.Name, out.Ret, ref.Ret)
				}
				if st.Cycles <= 0 {
					t.Fatalf("%s: no cycles", cfg.Name)
				}
			}
		})
	}
}
